//! Attribute-filtered (hybrid) search — the survey's "Tendencies" §6:
//! "the latest research adds structured attribute constraints to the
//! search process of graph-based algorithms" (AnalyticDB-V, NGT-qg-style
//! hybrid queries).
//!
//! Strategy: *traverse unfiltered, collect filtered*. The beam explores
//! the graph ignoring the predicate (filtering the traversal itself
//! fragments the graph and strands whole regions when selectivity is low),
//! while a separate result pool admits only predicate-passing vertices.
//! The search ends when the traversal pool converges and the result pool
//! holds `k` passing vertices no frontier candidate can improve.

use super::scratch::SearchScratch;
use super::SearchStats;
use crate::telemetry::{NoopTracer, RouteTracer};
use weavess_data::neighbor::insert_into_pool;
use weavess_data::prefetch::prefetch_enabled;
use weavess_data::vectors::VectorView;
use weavess_data::Neighbor;
use weavess_graph::adjacency::GraphView;

/// Best-first search returning only vertices accepted by `filter`.
///
/// `beam` bounds the traversal pool as usual; the result pool holds up to
/// `k` accepted vertices. With a constant-true filter this returns exactly
/// the top-k of [`super::beam_search`]. Expansion is batch-scored like
/// `beam_search`, preserving per-neighbor insertion order.
#[allow(clippy::too_many_arguments)]
pub fn filtered_beam_search(
    ds: &(impl VectorView + ?Sized),
    g: &(impl GraphView + ?Sized),
    query: &[f32],
    seeds: &[u32],
    k: usize,
    beam: usize,
    filter: &dyn Fn(u32) -> bool,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
) -> Vec<Neighbor> {
    filtered_beam_search_traced(
        ds,
        g,
        query,
        seeds,
        k,
        beam,
        filter,
        scratch,
        stats,
        &mut NoopTracer,
    )
}

/// [`filtered_beam_search`] with a [`RouteTracer`] observing the
/// (unfiltered) traversal; `pool_peak` tracks the traversal pool.
#[allow(clippy::too_many_arguments)]
pub fn filtered_beam_search_traced<T: RouteTracer>(
    ds: &(impl VectorView + ?Sized),
    g: &(impl GraphView + ?Sized),
    query: &[f32],
    seeds: &[u32],
    k: usize,
    beam: usize,
    filter: &dyn Fn(u32) -> bool,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
    tracer: &mut T,
) -> Vec<Neighbor> {
    let beam = beam.max(1);
    let k = k.max(1);
    let pf = prefetch_enabled();
    let SearchScratch {
        visited,
        pool,
        expanded,
        results,
        batch_ids,
        batch_dists,
        ..
    } = scratch;
    // Traversal pool (unfiltered) with expansion flags; result pool
    // (filtered).
    pool.clear();
    expanded.clear();
    results.clear();

    let push = |pool: &mut Vec<Neighbor>,
                expanded: &mut Vec<bool>,
                results: &mut Vec<Neighbor>,
                n: Neighbor|
     -> Option<usize> {
        if filter(n.id) {
            insert_into_pool(results, k, n);
        }
        let pos = insert_into_pool(pool, beam, n);
        if let Some(p) = pos {
            expanded.insert(p, false);
            expanded.truncate(pool.len());
        }
        pos
    };

    for &s in seeds {
        if visited.visit(s) {
            stats.ndc += 1;
            let d = ds.dist_to(query, s);
            tracer.on_seed(s, d);
            push(pool, expanded, results, Neighbor::new(s, d));
        }
    }
    stats.pool_peak = stats.pool_peak.max(pool.len() as u64);

    let mut i = 0usize;
    while i < pool.len() {
        if expanded[i] {
            i += 1;
            continue;
        }
        expanded[i] = true;
        stats.hops += 1;
        let v = pool[i].id;
        tracer.on_hop(v, pool[i].dist, stats.ndc, pool.len());
        if pf {
            if let Some(next) = pool.get(i + 1) {
                g.prefetch_neighbors(next.id);
            }
        }
        batch_ids.clear();
        for &u in g.neighbors(v) {
            if visited.visit(u) {
                if pf {
                    ds.prefetch_vector(u);
                }
                batch_ids.push(u);
            }
        }
        stats.ndc += batch_ids.len() as u64;
        ds.dist_to_many(query, batch_ids, batch_dists);
        let mut lowest = usize::MAX;
        for (&u, &d) in batch_ids.iter().zip(batch_dists.iter()) {
            if let Some(pos) = push(pool, expanded, results, Neighbor::new(u, d)) {
                lowest = lowest.min(pos);
            }
        }
        stats.pool_peak = stats.pool_peak.max(pool.len() as u64);
        // <= : an insertion at exactly i means the expanded entry
        // shifted right and an unexpanded one now sits at i.
        if lowest <= i {
            i = lowest;
        } else {
            i += 1;
        }
    }
    results.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::beam_search;
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_data::Dataset;
    use weavess_graph::base::exact_knng;
    use weavess_graph::CsrGraph;

    fn setup() -> (Dataset, Dataset, CsrGraph) {
        let spec = MixtureSpec {
            intrinsic_dim: Some(6),
            noise: 0.05,
            shared_subspace: true,
            ..MixtureSpec::table10(16, 1_000, 3, 5.0, 30)
        };
        let (base, queries) = spec.generate();
        let g = exact_knng(&base, 12, 2);
        (base, queries, g)
    }

    #[test]
    fn constant_true_filter_matches_plain_beam_search() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        let seeds = [0u32, 300, 700];
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            scratch.next_epoch();
            let filtered =
                filtered_beam_search(&ds, &g, q, &seeds, 10, 40, &|_| true, &mut scratch, &mut s1);
            scratch.next_epoch();
            let mut plain = beam_search(&ds, &g, q, &seeds, 40, &mut scratch, &mut s2);
            plain.truncate(10);
            assert_eq!(filtered, plain, "query {qi}");
        }
    }

    #[test]
    fn results_satisfy_the_predicate() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        let filter = |id: u32| id.is_multiple_of(3);
        for qi in 0..qs.len() as u32 {
            scratch.next_epoch();
            let res = filtered_beam_search(
                &ds,
                &g,
                qs.point(qi),
                &[0, 500],
                10,
                60,
                &filter,
                &mut scratch,
                &mut stats,
            );
            assert!(res.iter().all(|n| filter(n.id)));
            assert!(res.len() <= 10);
        }
    }

    #[test]
    fn filtered_recall_against_filtered_ground_truth() {
        let (ds, qs, g) = setup();
        let filter = |id: u32| id.is_multiple_of(2);
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        let mut hits = 0usize;
        let mut total = 0usize;
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            // Filtered exact ground truth: scan, keep passing ids.
            let truth: Vec<u32> = knn_scan(&ds, q, ds.len(), None)
                .into_iter()
                .filter(|n| filter(n.id))
                .take(10)
                .map(|n| n.id)
                .collect();
            scratch.next_epoch();
            let res = filtered_beam_search(
                &ds,
                &g,
                q,
                &[0, 250, 750],
                10,
                80,
                &filter,
                &mut scratch,
                &mut stats,
            );
            hits += res.iter().filter(|n| truth.contains(&n.id)).count();
            total += truth.len();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.8, "filtered recall {recall}");
    }

    #[test]
    fn highly_selective_filter_still_returns_something() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        scratch.next_epoch();
        let res = filtered_beam_search(
            &ds,
            &g,
            qs.point(0),
            &[0, 500],
            5,
            100,
            &|id| id < 20, // 2% selectivity
            &mut scratch,
            &mut stats,
        );
        // The traversal may not reach every passing vertex, but with a 100
        // beam over a 1000-point graph it must find some.
        assert!(!res.is_empty());
        assert!(res.iter().all(|n| n.id < 20));
    }
}
