//! Reusable per-searcher working memory.
//!
//! Every routing strategy needs the same few buffers: the epoch-stamped
//! visited set, a bounded candidate pool with expansion flags, and (for
//! batch-scored expansion) an id/distance staging pair. Allocating them per
//! query costs more than the search on small beams, so they live here and
//! are checked out alongside the RNG and stats in
//! [`crate::index::SearchContext`]. Each search function clears what it
//! uses on entry; nothing leaks between queries except capacity.

use crate::search::VisitedPool;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use weavess_data::Neighbor;

/// Scratch space for one searcher (one thread / one worker at a time).
#[derive(Debug, Clone)]
pub struct SearchScratch {
    /// Epoch-stamped visited set; call `visited.next_epoch()` (or
    /// [`Self::next_epoch`]) before each query.
    pub visited: VisitedPool,
    /// Bounded nearest-first candidate pool.
    pub(crate) pool: Vec<Neighbor>,
    /// Expansion flags parallel to `pool`.
    pub(crate) expanded: Vec<bool>,
    /// Second bounded pool (filtered results, backtrack overflow mirror).
    pub(crate) results: Vec<Neighbor>,
    /// Unbounded min-heap (range search queue, backtrack overflow).
    pub(crate) heap: BinaryHeap<Reverse<Neighbor>>,
    /// Unvisited neighbor ids staged for one batched scoring pass.
    pub(crate) batch_ids: Vec<u32>,
    /// Distances matching `batch_ids`, filled by `Dataset::dist_to_many`.
    pub(crate) batch_dists: Vec<f32>,
}

/// Inserts `n` (unexpanded) into a bounded nearest-first pool, keeping the
/// expansion-flag vector parallel; returns the insertion position, or
/// `None` when rejected (duplicate or beyond capacity).
#[inline]
pub(crate) fn insert_unexpanded(
    pool: &mut Vec<Neighbor>,
    expanded: &mut Vec<bool>,
    cap: usize,
    n: Neighbor,
) -> Option<usize> {
    let pos = weavess_data::neighbor::insert_into_pool(pool, cap, n)?;
    expanded.insert(pos, false);
    expanded.truncate(pool.len());
    Some(pos)
}

impl SearchScratch {
    /// Scratch for a graph of `n` vertices, all buffers empty.
    pub fn new(n: usize) -> Self {
        SearchScratch {
            visited: VisitedPool::new(n),
            pool: Vec::new(),
            expanded: Vec::new(),
            results: Vec::new(),
            heap: BinaryHeap::new(),
            batch_ids: Vec::new(),
            batch_dists: Vec::new(),
        }
    }

    /// Starts a fresh query: every vertex becomes unvisited in O(1).
    #[inline]
    pub fn next_epoch(&mut self) {
        self.visited.next_epoch();
    }

    /// Grows the visited set to cover at least `n` vertices (dynamic
    /// indexes; the other buffers grow on demand).
    pub fn ensure_len(&mut self, n: usize) {
        self.visited.ensure_len(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_scratch_covers_n_vertices() {
        let s = SearchScratch::new(7);
        assert_eq!(s.visited.len(), 7);
        assert!(s.pool.is_empty() && s.batch_ids.is_empty());
    }

    #[test]
    fn ensure_len_grows_the_visited_set() {
        let mut s = SearchScratch::new(2);
        s.ensure_len(9);
        assert_eq!(s.visited.len(), 9);
    }
}
