//! HCNNG's guided search (C7).
//!
//! §4.2: instead of visiting *all* neighbors of the expanded vertex like
//! best-first search, guided search "avoids some redundant visits based on
//! the query's location" — fewer distance computations per hop at a small
//! accuracy cost (the S2 routing-efficiency fix, with the accuracy caveat
//! Figure 10(f) reports).
//!
//! Gate (our O(1)-per-neighbor approximation, documented in DESIGN.md):
//! for expanded vertex `x`, find the coordinate `d*` where the query
//! deviates most from `x`; skip neighbor `n` when it moves in the opposite
//! direction along `d*`. Neighbors aligned with the query's dominant
//! direction always pass.

use super::scratch::{insert_unexpanded, SearchScratch};
use super::SearchStats;
use crate::telemetry::{NoopTracer, RouteTracer};
use weavess_data::prefetch::prefetch_enabled;
use weavess_data::vectors::VectorView;
use weavess_data::Neighbor;
use weavess_graph::adjacency::GraphView;

/// Guided best-first search from `seeds`.
///
/// Requires a [`VectorView`] with raw coordinates ([`VectorView::vector`])
/// for the direction gate — SQ8-only storage cannot run guided search.
pub fn guided_search(
    ds: &(impl VectorView + ?Sized),
    g: &(impl GraphView + ?Sized),
    query: &[f32],
    seeds: &[u32],
    beam: usize,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
) -> Vec<Neighbor> {
    guided_search_traced(ds, g, query, seeds, beam, scratch, stats, &mut NoopTracer)
}

/// [`guided_search`] with a [`RouteTracer`]. Gated-out neighbors are
/// invisible to the tracer (they are never scored); only scored seeds and
/// expanded vertices are reported.
#[allow(clippy::too_many_arguments)]
pub fn guided_search_traced<T: RouteTracer>(
    ds: &(impl VectorView + ?Sized),
    g: &(impl GraphView + ?Sized),
    query: &[f32],
    seeds: &[u32],
    beam: usize,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
    tracer: &mut T,
) -> Vec<Neighbor> {
    let beam = beam.max(1);
    let pf = prefetch_enabled();
    let SearchScratch {
        visited,
        pool,
        expanded,
        batch_ids,
        batch_dists,
        ..
    } = scratch;
    pool.clear();
    expanded.clear();
    for &s in seeds {
        if visited.visit(s) {
            stats.ndc += 1;
            let d = ds.dist_to(query, s);
            tracer.on_seed(s, d);
            insert_unexpanded(pool, expanded, beam, Neighbor::new(s, d));
        }
    }
    stats.pool_peak = stats.pool_peak.max(pool.len() as u64);
    let mut k = 0usize;
    while k < pool.len() {
        if expanded[k] {
            k += 1;
            continue;
        }
        expanded[k] = true;
        stats.hops += 1;
        let v = pool[k].id;
        tracer.on_hop(v, pool[k].dist, stats.ndc, pool.len());
        if pf {
            if let Some(next) = pool.get(k + 1) {
                g.prefetch_neighbors(next.id);
            }
        }
        let x = ds.vector(v);
        // Dominant query direction at x: one O(dim) scan per expansion.
        let mut dstar = 0usize;
        let mut best = 0.0f32;
        for (d, (&qd, &xd)) in query.iter().zip(x).enumerate() {
            let a = (qd - xd).abs();
            if a > best {
                best = a;
                dstar = d;
            }
        }
        let want_positive = query[dstar] >= x[dstar];
        // Stage the neighbors that survive the direction gate, then score
        // them in one batched pass (order preserved, so results are
        // identical to per-neighbor scoring).
        batch_ids.clear();
        for &u in g.neighbors(v) {
            if visited.is_visited(u) {
                continue;
            }
            let nu = ds.vector(u);
            let goes_positive = nu[dstar] >= x[dstar];
            if goes_positive != want_positive {
                continue; // gated out: moves away from the query
            }
            visited.visit(u);
            batch_ids.push(u);
        }
        stats.ndc += batch_ids.len() as u64;
        ds.dist_to_many(query, batch_ids, batch_dists);
        let mut lowest = usize::MAX;
        for (&u, &d) in batch_ids.iter().zip(batch_dists.iter()) {
            if let Some(pos) = insert_unexpanded(pool, expanded, beam, Neighbor::new(u, d)) {
                lowest = lowest.min(pos);
            }
        }
        stats.pool_peak = stats.pool_peak.max(pool.len() as u64);
        // <= : an insertion at exactly k means the expanded entry
        // shifted right and an unexpanded one now sits at k.
        if lowest <= k {
            k = lowest;
        } else {
            k += 1;
        }
    }
    pool.clone()
}

#[cfg(test)]
mod tests {
    use super::super::beam_search;
    use super::*;
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_data::Dataset;
    use weavess_graph::base::exact_knng;
    use weavess_graph::CsrGraph;

    fn setup() -> (Dataset, Dataset, CsrGraph) {
        let (base, queries) = MixtureSpec::table10(8, 500, 4, 3.0, 30).generate();
        let g = exact_knng(&base, 10, 4);
        (base, queries, g)
    }

    #[test]
    fn guided_search_spends_fewer_distance_computations() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let seeds: Vec<u32> = (0..8u32).map(|i| i * 59 % ds.len() as u32).collect();
        let mut s_guided = SearchStats::default();
        let mut s_beam = SearchStats::default();
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            scratch.next_epoch();
            guided_search(&ds, &g, q, &seeds, 20, &mut scratch, &mut s_guided);
            scratch.next_epoch();
            beam_search(&ds, &g, q, &seeds, 20, &mut scratch, &mut s_beam);
        }
        assert!(
            s_guided.ndc < s_beam.ndc,
            "guided {} !< beam {}",
            s_guided.ndc,
            s_beam.ndc
        );
    }

    #[test]
    fn guided_search_accuracy_stays_reasonable() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        let seeds: Vec<u32> = (0..8u32).map(|i| i * 59 % ds.len() as u32).collect();
        let mut hits = 0usize;
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            scratch.next_epoch();
            let res = guided_search(&ds, &g, q, &seeds, 30, &mut scratch, &mut stats);
            let truth: Vec<u32> = knn_scan(&ds, q, 10, None).iter().map(|n| n.id).collect();
            hits += res
                .iter()
                .take(10)
                .filter(|n| truth.contains(&n.id))
                .count();
        }
        let recall = hits as f64 / (10 * qs.len()) as f64;
        assert!(recall > 0.5, "recall={recall}");
    }

    #[test]
    fn result_sorted_and_bounded() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        scratch.next_epoch();
        let res = guided_search(&ds, &g, qs.point(0), &[0, 9], 12, &mut scratch, &mut stats);
        assert!(res.len() <= 12);
        assert!(res.windows(2).all(|w| w[0].dist <= w[1].dist));
    }
}
