//! FANNG's backtracking search (C7).
//!
//! §4.2 / §3.2 (A3): best-first search is susceptible to local optima;
//! FANNG "uses backtrack to the second-closest vertex and considers its
//! edges that have not been explored yet". We run best-first to
//! convergence while recording every candidate that fell off the bounded
//! pool, then spend up to `extra` additional expansions on the nearest of
//! those rejected candidates — slightly better accuracy for notably more
//! search time, the trade-off Figure 10(f) reports for `C7_FANNG`.

use super::scratch::SearchScratch;
use super::SearchStats;
use crate::telemetry::{NoopTracer, RouteTracer};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use weavess_data::neighbor::insert_into_pool;
use weavess_data::prefetch::prefetch_enabled;
use weavess_data::vectors::VectorView;
use weavess_data::Neighbor;
use weavess_graph::adjacency::GraphView;

/// Backtracking best-first search from `seeds`. Expansion is batch-scored
/// like [`super::beam_search`]; insertions stay in adjacency order, so
/// results match per-neighbor scoring exactly.
#[allow(clippy::too_many_arguments)]
pub fn backtrack_search(
    ds: &(impl VectorView + ?Sized),
    g: &(impl GraphView + ?Sized),
    query: &[f32],
    seeds: &[u32],
    beam: usize,
    extra: usize,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
) -> Vec<Neighbor> {
    backtrack_search_traced(
        ds,
        g,
        query,
        seeds,
        beam,
        extra,
        scratch,
        stats,
        &mut NoopTracer,
    )
}

/// [`backtrack_search`] with a [`RouteTracer`]. Both best-first and
/// backtrack expansions are reported as hops, in expansion order.
#[allow(clippy::too_many_arguments)]
pub fn backtrack_search_traced<T: RouteTracer>(
    ds: &(impl VectorView + ?Sized),
    g: &(impl GraphView + ?Sized),
    query: &[f32],
    seeds: &[u32],
    beam: usize,
    extra: usize,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
    tracer: &mut T,
) -> Vec<Neighbor> {
    let beam = beam.max(1);
    let pf = prefetch_enabled();
    let SearchScratch {
        visited,
        pool,
        expanded,
        heap: overflow,
        batch_ids,
        batch_dists,
        ..
    } = scratch;
    pool.clear();
    expanded.clear();
    overflow.clear();

    // Plain best-first phase, tracking rejected candidates.
    let push = |pool: &mut Vec<Neighbor>,
                expanded: &mut Vec<bool>,
                overflow: &mut BinaryHeap<Reverse<Neighbor>>,
                n: Neighbor|
     -> Option<usize> {
        match insert_into_pool(pool, beam, n) {
            Some(pos) => {
                expanded.insert(pos, false);
                if expanded.len() > pool.len() {
                    // An entry fell off the end of the bounded pool; it is a
                    // backtracking candidate now.
                    expanded.truncate(pool.len());
                }
                Some(pos)
            }
            None => {
                overflow.push(Reverse(n));
                None
            }
        }
    };

    for &s in seeds {
        if visited.visit(s) {
            stats.ndc += 1;
            let d = ds.dist_to(query, s);
            tracer.on_seed(s, d);
            push(pool, expanded, overflow, Neighbor::new(s, d));
        }
    }
    stats.pool_peak = stats.pool_peak.max(pool.len() as u64);

    let mut budget = extra;
    loop {
        let mut k = 0usize;
        let mut progressed = false;
        while k < pool.len() {
            if expanded[k] {
                k += 1;
                continue;
            }
            expanded[k] = true;
            progressed = true;
            stats.hops += 1;
            let v = pool[k].id;
            tracer.on_hop(v, pool[k].dist, stats.ndc, pool.len());
            if pf {
                if let Some(next) = pool.get(k + 1) {
                    g.prefetch_neighbors(next.id);
                }
            }
            batch_ids.clear();
            for &u in g.neighbors(v) {
                if visited.visit(u) {
                    if pf {
                        ds.prefetch_vector(u);
                    }
                    batch_ids.push(u);
                }
            }
            stats.ndc += batch_ids.len() as u64;
            ds.dist_to_many(query, batch_ids, batch_dists);
            let mut lowest = usize::MAX;
            for (&u, &d) in batch_ids.iter().zip(batch_dists.iter()) {
                if let Some(pos) = push(pool, expanded, overflow, Neighbor::new(u, d)) {
                    lowest = lowest.min(pos);
                }
            }
            stats.pool_peak = stats.pool_peak.max(pool.len() as u64);
            // <= : an insertion at exactly k means the expanded entry
            // shifted right and an unexpanded one now sits at k.
            if lowest <= k {
                k = lowest;
            } else {
                k += 1;
            }
        }
        // Converged. Backtrack into the nearest rejected candidate, if any
        // budget remains.
        if budget == 0 {
            break;
        }
        let Some(Reverse(c)) = overflow.pop() else {
            break;
        };
        budget -= 1;
        stats.hops += 1;
        tracer.on_hop(c.id, c.dist, stats.ndc, pool.len());
        batch_ids.clear();
        for &u in g.neighbors(c.id) {
            if visited.visit(u) {
                if pf {
                    ds.prefetch_vector(u);
                }
                batch_ids.push(u);
            }
        }
        stats.ndc += batch_ids.len() as u64;
        ds.dist_to_many(query, batch_ids, batch_dists);
        let mut injected = false;
        for (&u, &d) in batch_ids.iter().zip(batch_dists.iter()) {
            if push(pool, expanded, overflow, Neighbor::new(u, d)).is_some() {
                injected = true;
            }
        }
        stats.pool_peak = stats.pool_peak.max(pool.len() as u64);
        if !injected && !progressed {
            // Neither the main loop nor backtracking changed anything.
            if overflow.is_empty() {
                break;
            }
        }
    }
    pool.clone()
}

#[cfg(test)]
mod tests {
    use super::super::beam_search;
    use super::*;
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_data::Dataset;
    use weavess_graph::base::exact_knng;
    use weavess_graph::CsrGraph;

    fn setup() -> (Dataset, Dataset, CsrGraph) {
        let (base, queries) = MixtureSpec::table10(8, 400, 4, 3.0, 25).generate();
        // A sparse graph (K=4) makes local optima likely, giving
        // backtracking something to fix.
        let g = exact_knng(&base, 4, 4);
        (base, queries, g)
    }

    fn run(extra: usize) -> (usize, u64) {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        let seeds = [0u32, 97, 211];
        let mut hits = 0usize;
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            scratch.next_epoch();
            let res = backtrack_search(&ds, &g, q, &seeds, 10, extra, &mut scratch, &mut stats);
            let truth: Vec<u32> = knn_scan(&ds, q, 10, None).iter().map(|n| n.id).collect();
            hits += res
                .iter()
                .take(10)
                .filter(|n| truth.contains(&n.id))
                .count();
        }
        (hits, stats.ndc)
    }

    #[test]
    fn zero_extra_matches_best_first() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        let seeds = [0u32, 97];
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            scratch.next_epoch();
            let a = backtrack_search(&ds, &g, q, &seeds, 12, 0, &mut scratch, &mut s1);
            scratch.next_epoch();
            let b = beam_search(&ds, &g, q, &seeds, 12, &mut scratch, &mut s2);
            assert_eq!(a, b, "query {qi}");
        }
        assert_eq!(s1.ndc, s2.ndc);
        assert_eq!(s1.pool_peak, s2.pool_peak);
    }

    #[test]
    fn backtracking_spends_more_and_recalls_no_less() {
        let (hits0, ndc0) = run(0);
        let (hits16, ndc16) = run(16);
        assert!(ndc16 > ndc0);
        assert!(hits16 >= hits0, "{hits16} < {hits0}");
    }
}
