//! NGT's range search (C7): best-first with an unbounded candidate queue
//! and an ε-inflated acceptance radius.
//!
//! Per §4.2: the candidate set's size restriction is cancelled; with `r`
//! the distance of the current worst result, a neighbor `n` enters the
//! queue iff `δ(n, q) < (1 + ε) · r`. Larger ε escapes local optima at the
//! cost of more distance computations — the "precision ceiling" behaviour
//! the component evaluation observes for `C7_NGT` (Figure 10f).

use super::scratch::SearchScratch;
use super::SearchStats;
use crate::telemetry::{NoopTracer, RouteTracer};
use std::cmp::Reverse;
use weavess_data::neighbor::insert_into_pool;
use weavess_data::prefetch::prefetch_enabled;
use weavess_data::vectors::VectorView;
use weavess_data::Neighbor;
use weavess_graph::adjacency::GraphView;

/// Range search from `seeds`; returns up to `beam` nearest results.
///
/// Expansion is batch-scored (every visited neighbor's distance was always
/// computed before the radius test, so batching changes neither NDC nor
/// results); the ε-inflated acceptance test still runs per neighbor, in
/// adjacency order, against the live radius.
#[allow(clippy::too_many_arguments)]
pub fn range_search(
    ds: &(impl VectorView + ?Sized),
    g: &(impl GraphView + ?Sized),
    query: &[f32],
    seeds: &[u32],
    beam: usize,
    epsilon: f32,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
) -> Vec<Neighbor> {
    range_search_traced(
        ds,
        g,
        query,
        seeds,
        beam,
        epsilon,
        scratch,
        stats,
        &mut NoopTracer,
    )
}

/// [`range_search`] with a [`RouteTracer`]. The reported pool occupancy is
/// the unbounded candidate queue's length at expansion time, and
/// `pool_peak` tracks the queue's high-water mark.
#[allow(clippy::too_many_arguments)]
pub fn range_search_traced<T: RouteTracer>(
    ds: &(impl VectorView + ?Sized),
    g: &(impl GraphView + ?Sized),
    query: &[f32],
    seeds: &[u32],
    beam: usize,
    epsilon: f32,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
    tracer: &mut T,
) -> Vec<Neighbor> {
    let beam = beam.max(1);
    let pf = prefetch_enabled();
    let inflate = (1.0 + epsilon.max(0.0)).powi(2); // squared-distance space
    let SearchScratch {
        visited,
        results,
        heap: queue,
        batch_ids,
        batch_dists,
        ..
    } = scratch;
    results.clear();
    queue.clear();
    for &s in seeds {
        if visited.visit(s) {
            stats.ndc += 1;
            let d = ds.dist_to(query, s);
            tracer.on_seed(s, d);
            let n = Neighbor::new(s, d);
            insert_into_pool(results, beam, n);
            queue.push(Reverse(n));
        }
    }
    stats.pool_peak = stats.pool_peak.max(queue.len() as u64);
    while let Some(Reverse(c)) = queue.pop() {
        let radius = if results.len() == beam {
            results.last().map_or(f32::INFINITY, |w| w.dist)
        } else {
            f32::INFINITY
        };
        if c.dist > inflate * radius {
            break; // nothing left within the inflated radius
        }
        stats.hops += 1;
        tracer.on_hop(c.id, c.dist, stats.ndc, queue.len());
        if pf {
            if let Some(Reverse(next)) = queue.peek() {
                g.prefetch_neighbors(next.id);
            }
        }
        batch_ids.clear();
        for &u in g.neighbors(c.id) {
            if visited.visit(u) {
                if pf {
                    ds.prefetch_vector(u);
                }
                batch_ids.push(u);
            }
        }
        stats.ndc += batch_ids.len() as u64;
        ds.dist_to_many(query, batch_ids, batch_dists);
        for (&u, &d) in batch_ids.iter().zip(batch_dists.iter()) {
            let radius = if results.len() == beam {
                results.last().map_or(f32::INFINITY, |w| w.dist)
            } else {
                f32::INFINITY
            };
            if d < inflate * radius {
                let n = Neighbor::new(u, d);
                queue.push(Reverse(n));
                insert_into_pool(results, beam, n);
            }
        }
        stats.pool_peak = stats.pool_peak.max(queue.len() as u64);
    }
    results.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_data::Dataset;
    use weavess_graph::base::exact_knng;
    use weavess_graph::CsrGraph;

    fn setup() -> (Dataset, Dataset, CsrGraph) {
        let (base, queries) = MixtureSpec::table10(8, 400, 4, 3.0, 20).generate();
        let g = exact_knng(&base, 10, 4);
        (base, queries, g)
    }

    fn recall_at_10(eps: f32) -> (f64, u64) {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        let seeds: Vec<u32> = (0..8u32).map(|i| i * 47 % ds.len() as u32).collect();
        let mut hits = 0usize;
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            scratch.next_epoch();
            let res = range_search(&ds, &g, q, &seeds, 10, eps, &mut scratch, &mut stats);
            let truth: Vec<u32> = knn_scan(&ds, q, 10, None).iter().map(|n| n.id).collect();
            hits += res
                .iter()
                .take(10)
                .filter(|n| truth.contains(&n.id))
                .count();
        }
        (hits as f64 / (10 * qs.len()) as f64, stats.ndc)
    }

    #[test]
    fn finds_neighbors_with_modest_epsilon() {
        let (r, _) = recall_at_10(0.1);
        assert!(r > 0.6, "recall={r}");
    }

    #[test]
    fn larger_epsilon_costs_more_and_recalls_no_less() {
        let (r_small, ndc_small) = recall_at_10(0.0);
        let (r_large, ndc_large) = recall_at_10(0.4);
        assert!(ndc_large > ndc_small, "{ndc_large} <= {ndc_small}");
        assert!(r_large >= r_small - 0.02, "{r_large} < {r_small}");
    }

    #[test]
    fn results_sorted_and_bounded() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        scratch.next_epoch();
        let res = range_search(
            &ds,
            &g,
            qs.point(0),
            &[0, 3],
            7,
            0.2,
            &mut scratch,
            &mut stats,
        );
        assert!(res.len() <= 7);
        assert!(res.windows(2).all(|w| w[0].dist <= w[1].dist));
    }
}
