//! Vantage-point tree (NGT's seed structure).
//!
//! Each node picks a vantage point, computes every remaining point's true
//! distance to it, and splits at the median radius: inner child holds the
//! closer half, outer child the farther half. Search prunes children with
//! the triangle inequality. Unlike the KD-tree's value-comparison descent,
//! every visited node costs one *distance computation* — the exact property
//! that makes NGT's seed acquisition expensive on hard datasets (Fig 10d).

use weavess_data::neighbor::insert_into_pool;
use weavess_data::{Dataset, Neighbor};

enum Node {
    Internal {
        vantage: u32,
        radius: f32, // true (non-squared) median distance
        inner: u32,
        outer: u32,
    },
    Leaf {
        start: u32,
        end: u32,
    },
}

/// A vantage-point tree over a dataset.
pub struct VpTree {
    nodes: Vec<Node>,
    ids: Vec<u32>,
}

impl VpTree {
    /// Builds with the given maximum leaf size. Vantage points are chosen
    /// deterministically (first id of the node's range) so that equal
    /// datasets yield equal trees.
    pub fn build(ds: &Dataset, leaf_size: usize) -> Self {
        let mut ids: Vec<u32> = (0..ds.len() as u32).collect();
        let mut nodes = Vec::new();
        let n = ids.len();
        Self::build_node(ds, &mut ids, 0, n, leaf_size.max(2), &mut nodes);
        VpTree { nodes, ids }
    }

    fn build_node(
        ds: &Dataset,
        ids: &mut [u32],
        start: usize,
        end: usize,
        leaf_size: usize,
        nodes: &mut Vec<Node>,
    ) -> u32 {
        let me = nodes.len() as u32;
        if end - start <= leaf_size {
            nodes.push(Node::Leaf {
                start: start as u32,
                end: end as u32,
            });
            return me;
        }
        let vantage = ids[start];
        let rest = start + 1;
        // Median split by distance to the vantage point.
        let mid = rest + (end - rest) / 2;
        ids[rest..end].select_nth_unstable_by((mid - rest).saturating_sub(1), |&a, &b| {
            ds.dist(vantage, a).total_cmp(&ds.dist(vantage, b))
        });
        let radius = ds.dist(vantage, ids[mid - 1]).sqrt();
        nodes.push(Node::Internal {
            vantage,
            radius,
            inner: 0,
            outer: 0,
        });
        let inner = Self::build_node(ds, ids, rest, mid, leaf_size, nodes);
        let outer = Self::build_node(ds, ids, mid, end, leaf_size, nodes);
        if let Node::Internal {
            inner: i, outer: o, ..
        } = &mut nodes[me as usize]
        {
            *i = inner;
            *o = outer;
        }
        me
    }

    /// Approximate k-NN with a bounded number of distance computations.
    /// Returns the pool and the number of distances spent.
    pub fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        max_checks: usize,
    ) -> (Vec<Neighbor>, u64) {
        let mut pool: Vec<Neighbor> = Vec::with_capacity(k + 1);
        let mut checks = 0u64;
        let mut stack = vec![0u32];
        while let Some(node) = stack.pop() {
            if checks as usize >= max_checks {
                break;
            }
            match &self.nodes[node as usize] {
                Node::Leaf { start, end } => {
                    for &id in &self.ids[*start as usize..*end as usize] {
                        checks += 1;
                        insert_into_pool(&mut pool, k, Neighbor::new(id, ds.dist_to(query, id)));
                        if checks as usize >= max_checks {
                            break;
                        }
                    }
                }
                Node::Internal {
                    vantage,
                    radius,
                    inner,
                    outer,
                } => {
                    checks += 1;
                    let d = ds.dist_to(query, *vantage).sqrt();
                    insert_into_pool(&mut pool, k, Neighbor::new(*vantage, d * d));
                    let tau = pool
                        .last()
                        .map_or(f32::INFINITY, |w| w.dist.sqrt().max(0.0));
                    let tau = if pool.len() < k { f32::INFINITY } else { tau };
                    // Push far side first so the near side pops first.
                    if d < *radius {
                        if d + tau >= *radius {
                            stack.push(*outer);
                        }
                        stack.push(*inner);
                    } else {
                        if d - tau <= *radius {
                            stack.push(*inner);
                        }
                        stack.push(*outer);
                    }
                }
            }
        }
        (pool, checks)
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>() + self.ids.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::synthetic::MixtureSpec;

    #[test]
    fn unbudgeted_search_is_exact() {
        let (ds, q) = MixtureSpec::table10(6, 300, 3, 4.0, 20).generate();
        let t = VpTree::build(&ds, 8);
        for qi in 0..q.len() as u32 {
            let query = q.point(qi);
            let (pool, _) = t.search(&ds, query, 3, usize::MAX);
            let truth = knn_scan(&ds, query, 3, None);
            assert_eq!(
                pool.iter().map(|n| n.id).collect::<Vec<_>>(),
                truth.iter().map(|n| n.id).collect::<Vec<_>>(),
                "query {qi}"
            );
        }
    }

    #[test]
    fn budget_caps_distance_computations() {
        let (ds, q) = MixtureSpec::table10(6, 500, 3, 4.0, 5).generate();
        let t = VpTree::build(&ds, 8);
        let (pool, checks) = t.search(&ds, q.point(0), 5, 60);
        assert!(checks <= 60 + 8);
        assert!(!pool.is_empty());
    }

    #[test]
    fn handles_tiny_datasets() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![5.0]]);
        let t = VpTree::build(&ds, 2);
        let (pool, _) = t.search(&ds, &[0.9], 2, usize::MAX);
        assert_eq!(pool[0].id, 1);
    }
}
