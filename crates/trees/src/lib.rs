#![warn(missing_docs)]

//! Auxiliary (non-graph) indexes used by the surveyed algorithms.
//!
//! Per the pipeline (§4), several algorithms attach a second index for
//! *seed preprocessing* (C4) / *seed acquisition* (C6) or *initialization*
//! (C1):
//!
//! | structure | used by | role |
//! |-----------|---------|------|
//! | [`kdtree::KdForest`] | EFANNA, HCNNG, SPTAG-KDT | C1 init & C6 seeds |
//! | [`vptree::VpTree`]   | NGT                      | C6 seeds |
//! | [`bktree::BkTree`]   | SPTAG-BKT                | C6 seeds |
//! | [`tptree`]           | SPTAG                    | C1 dataset division |
//! | [`lsh::LshTable`]    | IEH                      | C6 seeds |
//!
//! All structures are budgeted: their searches report how many distance
//! computations they spent so the NDC/speedup accounting (§5.1) can charge
//! seed acquisition to the query — which is exactly what makes tree-seeded
//! algorithms lose on hard datasets in the paper (C4 evaluation, Fig 10d).

pub mod bktree;
pub mod kdtree;
pub mod lsh;
pub mod tptree;
pub mod vptree;

pub use bktree::BkTree;
pub use kdtree::{KdForest, KdTree};
pub use lsh::LshTable;
pub use vptree::VpTree;
