//! Randomized KD-tree and KD-forest.
//!
//! EFANNA builds multiple KD-trees to initialize NN-Descent and to fetch
//! query-adjacent seeds; SPTAG-KDT and HCNNG use KD-trees for seeds too.
//! Splits follow the classic randomized-KD recipe: pick the split dimension
//! uniformly among the top-variance dimensions of the node's points, split
//! at the median.
//!
//! A KD-tree *seed* lookup is cheap on purpose — HCNNG's variant (C4
//! evaluation, §5.4) descends by pure value comparison with **zero distance
//! computations**, which the paper credits for its better seed performance
//! vs NGT/SPTAG-BKT trees.

use rand::rngs::StdRng;
use rand::Rng;
use weavess_data::neighbor::insert_into_pool;
use weavess_data::{Dataset, Neighbor};

const TOP_VARIANCE_POOL: usize = 5;

enum Node {
    Internal {
        dim: u32,
        threshold: f32,
        left: u32,
        right: u32,
    },
    Leaf {
        start: u32,
        end: u32,
    },
}

/// A single randomized KD-tree over a dataset.
pub struct KdTree {
    nodes: Vec<Node>,
    /// Point ids permuted so that every leaf owns a contiguous range.
    ids: Vec<u32>,
    leaf_size: usize,
}

impl KdTree {
    /// Builds over all points with the given maximum leaf size.
    pub fn build(ds: &Dataset, leaf_size: usize, rng: &mut StdRng) -> Self {
        let mut ids: Vec<u32> = (0..ds.len() as u32).collect();
        let mut nodes = Vec::new();
        let n = ids.len();
        Self::build_node(ds, &mut ids, 0, n, leaf_size.max(1), &mut nodes, rng);
        KdTree {
            nodes,
            ids,
            leaf_size: leaf_size.max(1),
        }
    }

    fn build_node(
        ds: &Dataset,
        ids: &mut [u32],
        start: usize,
        end: usize,
        leaf_size: usize,
        nodes: &mut Vec<Node>,
        rng: &mut StdRng,
    ) -> u32 {
        let me = nodes.len() as u32;
        if end - start <= leaf_size {
            nodes.push(Node::Leaf {
                start: start as u32,
                end: end as u32,
            });
            return me;
        }
        let slice = &ids[start..end];
        let dim = Self::pick_dimension(ds, slice, rng);
        // Median split on the chosen dimension.
        let mid = start + (end - start) / 2;
        ids[start..end].sort_unstable_by(|&a, &b| {
            ds.point(a)[dim as usize].total_cmp(&ds.point(b)[dim as usize])
        });
        let threshold = ds.point(ids[mid])[dim as usize];
        nodes.push(Node::Internal {
            dim,
            threshold,
            left: 0,
            right: 0,
        });
        let left = Self::build_node(ds, ids, start, mid, leaf_size, nodes, rng);
        let right = Self::build_node(ds, ids, mid, end, leaf_size, nodes, rng);
        if let Node::Internal {
            left: l, right: r, ..
        } = &mut nodes[me as usize]
        {
            *l = left;
            *r = right;
        }
        me
    }

    /// Split dimension: uniform choice among the `TOP_VARIANCE_POOL`
    /// highest-variance dimensions of a sample of the node's points.
    fn pick_dimension(ds: &Dataset, ids: &[u32], rng: &mut StdRng) -> u32 {
        let dim = ds.dim();
        let sample: Vec<u32> = if ids.len() > 64 {
            (0..64).map(|i| ids[i * ids.len() / 64]).collect()
        } else {
            ids.to_vec()
        };
        let mut mean = vec![0.0f64; dim];
        for &id in &sample {
            for (m, &x) in mean.iter_mut().zip(ds.point(id)) {
                *m += x as f64;
            }
        }
        for m in &mut mean {
            *m /= sample.len() as f64;
        }
        let mut var: Vec<(f64, u32)> = vec![(0.0, 0); dim];
        for (d, v) in var.iter_mut().enumerate() {
            v.1 = d as u32;
        }
        for &id in &sample {
            for (d, &x) in ds.point(id).iter().enumerate() {
                let c = x as f64 - mean[d];
                var[d].0 += c * c;
            }
        }
        var.sort_by(|a, b| b.0.total_cmp(&a.0));
        let pool = TOP_VARIANCE_POOL.min(dim);
        var[rng.gen_range(0..pool)].1
    }

    /// Point ids of the leaf the query descends to — pure value
    /// comparisons, zero distance computations (the HCNNG-style seed
    /// lookup).
    pub fn leaf_of(&self, query: &[f32]) -> &[u32] {
        let mut node = 0u32;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { start, end } => {
                    return &self.ids[*start as usize..*end as usize];
                }
                Node::Internal {
                    dim,
                    threshold,
                    left,
                    right,
                } => {
                    node = if query[*dim as usize] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Approximate k-NN with a bounded number of distance computations.
    ///
    /// Best-first traversal over split planes; returns the pool and the
    /// number of distance computations actually spent.
    pub fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        max_checks: usize,
    ) -> (Vec<Neighbor>, u64) {
        let mut pool: Vec<Neighbor> = Vec::with_capacity(k + 1);
        let mut checks = 0u64;
        // Min-heap of (plane distance, node) via sorted Vec used as stack of
        // candidates; sizes here are small (max_checks / leaf_size entries).
        let mut frontier: Vec<(f32, u32)> = vec![(0.0, 0)];
        while let Some(idx) = frontier
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .map(|(i, _)| i)
        {
            let (bound, mut node) = frontier.swap_remove(idx);
            if checks as usize >= max_checks {
                break;
            }
            let worst = pool.last().map_or(f32::INFINITY, |w| w.dist);
            if pool.len() == k && bound * bound > worst {
                continue;
            }
            // Descend to the leaf, queueing the far side of each split.
            loop {
                match &self.nodes[node as usize] {
                    Node::Leaf { start, end } => {
                        for &id in &self.ids[*start as usize..*end as usize] {
                            let d = ds.dist_to(query, id);
                            checks += 1;
                            insert_into_pool(&mut pool, k, Neighbor::new(id, d));
                            if checks as usize >= max_checks {
                                break;
                            }
                        }
                        break;
                    }
                    Node::Internal {
                        dim,
                        threshold,
                        left,
                        right,
                    } => {
                        let diff = query[*dim as usize] - threshold;
                        let (near, far) = if diff < 0.0 {
                            (*left, *right)
                        } else {
                            (*right, *left)
                        };
                        frontier.push((diff.abs(), far));
                        node = near;
                    }
                }
            }
        }
        (pool, checks)
    }

    /// Number of tree nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>() + self.ids.len() * std::mem::size_of::<u32>()
    }

    /// Maximum leaf size this tree was built with.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }
}

/// A forest of randomized KD-trees (EFANNA's `nTrees`).
pub struct KdForest {
    trees: Vec<KdTree>,
}

impl KdForest {
    /// Builds `n_trees` randomized trees.
    pub fn build(ds: &Dataset, n_trees: usize, leaf_size: usize, rng: &mut StdRng) -> Self {
        KdForest {
            trees: (0..n_trees.max(1))
                .map(|_| KdTree::build(ds, leaf_size, rng))
                .collect(),
        }
    }

    /// The trees.
    pub fn trees(&self) -> &[KdTree] {
        &self.trees
    }

    /// Number of trees in the forest.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Budgeted search on one tree only (SPTAG's restart routing draws a
    /// fresh seed set from a different tree each round).
    pub fn search_tree(
        &self,
        tree: usize,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        checks: usize,
    ) -> (Vec<Neighbor>, u64) {
        self.trees[tree % self.trees.len()].search(ds, query, k, checks)
    }

    /// Approximate k-NN across all trees with a per-tree check budget.
    /// Returns the merged pool and total distance computations.
    pub fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        checks_per_tree: usize,
    ) -> (Vec<Neighbor>, u64) {
        let mut pool: Vec<Neighbor> = Vec::with_capacity(k + 1);
        let mut total = 0u64;
        for t in &self.trees {
            let (p, c) = t.search(ds, query, k, checks_per_tree);
            total += c;
            for n in p {
                insert_into_pool(&mut pool, k, n);
            }
        }
        (pool, total)
    }

    /// Distance-free seed ids: the union of every tree's leaf for `query`,
    /// truncated to `count` (HCNNG's seed acquisition).
    pub fn leaf_seeds(&self, query: &[f32], count: usize) -> Vec<u32> {
        let mut seeds = Vec::with_capacity(count);
        for t in &self.trees {
            for &id in t.leaf_of(query) {
                if !seeds.contains(&id) {
                    seeds.push(id);
                    if seeds.len() == count {
                        return seeds;
                    }
                }
            }
        }
        seeds
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.trees.iter().map(|t| t.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::synthetic::MixtureSpec;

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(8, 600, 4, 3.0, 20).generate()
    }

    #[test]
    fn leaves_partition_all_points() {
        let (ds, _) = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let t = KdTree::build(&ds, 10, &mut rng);
        let mut seen = vec![false; ds.len()];
        let mut stack = vec![0u32];
        while let Some(n) = stack.pop() {
            match &t.nodes[n as usize] {
                Node::Leaf { start, end } => {
                    assert!(*end as usize - *start as usize <= 10);
                    for &id in &t.ids[*start as usize..*end as usize] {
                        assert!(!seen[id as usize], "id {id} in two leaves");
                        seen[id as usize] = true;
                    }
                }
                Node::Internal { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn leaf_of_agrees_with_split_planes() {
        let (ds, q) = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let t = KdTree::build(&ds, 16, &mut rng);
        let leaf = t.leaf_of(q.point(0));
        assert!(!leaf.is_empty());
        assert!(leaf.len() <= 16);
    }

    #[test]
    fn budgeted_search_finds_close_points() {
        let (ds, q) = dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let forest = KdForest::build(&ds, 4, 16, &mut rng);
        let mut hits = 0usize;
        for qi in 0..q.len() as u32 {
            let query = q.point(qi);
            let (pool, checks) = forest.search(&ds, query, 5, 200);
            assert!(checks <= 4 * 200);
            assert_eq!(pool.len(), 5);
            let truth = knn_scan(&ds, query, 5, None);
            let truth_ids: Vec<u32> = truth.iter().map(|n| n.id).collect();
            hits += pool.iter().filter(|n| truth_ids.contains(&n.id)).count();
        }
        // Clustered data + 4 trees: expect decent recall from tree search.
        assert!(
            hits as f64 / (5 * q.len()) as f64 > 0.5,
            "tree recall too low: {hits}"
        );
    }

    #[test]
    fn search_respects_budget() {
        let (ds, q) = dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let t = KdTree::build(&ds, 16, &mut rng);
        let (_, checks) = t.search(&ds, q.point(0), 10, 50);
        assert!(checks <= 50 + 16, "checks={checks}"); // one leaf overshoot max
    }

    #[test]
    fn forest_is_deterministic_given_rng_state() {
        let (ds, q) = dataset();
        let f1 = KdForest::build(&ds, 3, 16, &mut StdRng::seed_from_u64(42));
        let f2 = KdForest::build(&ds, 3, 16, &mut StdRng::seed_from_u64(42));
        for qi in 0..q.len() as u32 {
            assert_eq!(f1.leaf_seeds(q.point(qi), 8), f2.leaf_seeds(q.point(qi), 8));
        }
    }

    #[test]
    fn leaf_seeds_are_unique_and_bounded() {
        let (ds, q) = dataset();
        let mut rng = StdRng::seed_from_u64(5);
        let forest = KdForest::build(&ds, 3, 8, &mut rng);
        let seeds = forest.leaf_seeds(q.point(1), 10);
        assert!(seeds.len() <= 10);
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
