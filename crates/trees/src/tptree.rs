//! Trinary-projection-style partitioning (SPTAG's dataset division, C1).
//!
//! §4.1: "a partition hyperplane is formed by a linear combination of a few
//! coordinate axes with weights being -1 or 1". Each recursive split
//! projects the node's points onto such a sparse ±1 axis combination and
//! splits at the median projection; recursion stops at the target leaf
//! size. The result is a *partition* of the dataset into small subsets on
//! which divide-and-conquer builders (SPTAG) construct exact sub-KNNGs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use weavess_data::Dataset;

/// Number of axes combined into one projection direction.
const AXES_PER_SPLIT: usize = 5;

/// Recursively partitions `ids` (or the whole dataset when `ids` is `None`)
/// into subsets of at most `leaf_size` points using TP-style median splits.
pub fn tp_partition(
    ds: &Dataset,
    ids: Option<&[u32]>,
    leaf_size: usize,
    rng: &mut StdRng,
) -> Vec<Vec<u32>> {
    let mut all: Vec<u32> = match ids {
        Some(s) => s.to_vec(),
        None => (0..ds.len() as u32).collect(),
    };
    let mut leaves = Vec::new();
    let len = all.len();
    split(ds, &mut all, 0, len, leaf_size.max(2), rng, &mut leaves);
    leaves
}

fn split(
    ds: &Dataset,
    ids: &mut [u32],
    start: usize,
    end: usize,
    leaf_size: usize,
    rng: &mut StdRng,
    leaves: &mut Vec<Vec<u32>>,
) {
    let count = end - start;
    if count <= leaf_size {
        leaves.push(ids[start..end].to_vec());
        return;
    }
    // Sparse ±1 projection direction over a few random axes.
    let dim = ds.dim();
    let n_axes = AXES_PER_SPLIT.min(dim);
    let mut axes: Vec<usize> = (0..dim).collect();
    axes.shuffle(rng);
    axes.truncate(n_axes);
    let weights: Vec<f32> = (0..n_axes)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect();
    let project = |id: u32| -> f32 {
        let p = ds.point(id);
        axes.iter()
            .zip(&weights)
            .map(|(&a, &w)| w * p[a])
            .sum::<f32>()
    };
    let mid = start + count / 2;
    ids[start..end].select_nth_unstable_by(mid - start, |&a, &b| project(a).total_cmp(&project(b)));
    split(ds, ids, start, mid, leaf_size, rng, leaves);
    split(ds, ids, mid, end, leaf_size, rng, leaves);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use weavess_data::synthetic::MixtureSpec;

    #[test]
    fn partition_covers_all_points_exactly_once() {
        let (ds, _) = MixtureSpec::table10(12, 500, 4, 3.0, 10).generate();
        let mut rng = StdRng::seed_from_u64(11);
        let leaves = tp_partition(&ds, None, 32, &mut rng);
        let mut seen = vec![false; ds.len()];
        for leaf in &leaves {
            assert!(leaf.len() <= 32);
            for &id in leaf {
                assert!(!seen[id as usize], "duplicate id {id}");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn partition_respects_explicit_subset() {
        let (ds, _) = MixtureSpec::table10(12, 200, 2, 3.0, 10).generate();
        let subset: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(12);
        let leaves = tp_partition(&ds, Some(&subset), 8, &mut rng);
        let total: usize = leaves.iter().map(|l| l.len()).sum();
        assert_eq!(total, 50);
        assert!(leaves.iter().flatten().all(|&id| id < 50));
    }

    #[test]
    fn splits_are_roughly_balanced() {
        let (ds, _) = MixtureSpec::table10(12, 512, 4, 3.0, 10).generate();
        let mut rng = StdRng::seed_from_u64(13);
        let leaves = tp_partition(&ds, None, 64, &mut rng);
        // Median splits on 512 points with leaf 64: all leaves in 32..=64.
        for leaf in &leaves {
            assert!(leaf.len() >= 32 && leaf.len() <= 64, "len={}", leaf.len());
        }
    }
}
