//! Balanced k-means tree (SPTAG-BKT's seed structure).
//!
//! Each internal node clusters its points into `branch` groups with a few
//! Lloyd iterations (centers initialized by strided sampling for
//! determinism) and recurses. Search descends best-first by
//! query-to-center distance, spending one distance computation per center
//! visited — like the VP-tree, an inherently distance-hungry seed
//! structure, which is why the paper finds SPTAG-BKT seeds degrade on hard
//! datasets (§5.3, Fig 10d).

use weavess_data::distance::squared_euclidean;
use weavess_data::neighbor::insert_into_pool;
use weavess_data::{Dataset, Neighbor};

const LLOYD_ITERS: usize = 4;

enum Node {
    Internal {
        /// `branch` centers, row-major (branch × dim floats).
        centers: Vec<f32>,
        children: Vec<u32>,
    },
    Leaf {
        start: u32,
        end: u32,
    },
}

/// A balanced k-means tree.
pub struct BkTree {
    nodes: Vec<Node>,
    ids: Vec<u32>,
    dim: usize,
}

impl BkTree {
    /// Builds with the given branching factor and maximum leaf size.
    pub fn build(ds: &Dataset, branch: usize, leaf_size: usize) -> Self {
        let mut ids: Vec<u32> = (0..ds.len() as u32).collect();
        let mut nodes = Vec::new();
        let n = ids.len();
        Self::build_node(
            ds,
            &mut ids,
            0,
            n,
            branch.max(2),
            leaf_size.max(2),
            &mut nodes,
        );
        BkTree {
            nodes,
            ids,
            dim: ds.dim(),
        }
    }

    fn build_node(
        ds: &Dataset,
        ids: &mut [u32],
        start: usize,
        end: usize,
        branch: usize,
        leaf_size: usize,
        nodes: &mut Vec<Node>,
    ) -> u32 {
        let me = nodes.len() as u32;
        let count = end - start;
        if count <= leaf_size || count <= branch {
            nodes.push(Node::Leaf {
                start: start as u32,
                end: end as u32,
            });
            return me;
        }
        let dim = ds.dim();
        let k = branch;
        // Strided deterministic seeding.
        let mut centers = vec![0.0f32; k * dim];
        for c in 0..k {
            let id = ids[start + c * count / k];
            centers[c * dim..(c + 1) * dim].copy_from_slice(ds.point(id));
        }
        let mut assign = vec![0u32; count];
        for _ in 0..LLOYD_ITERS {
            // Assignment step.
            for (i, &id) in ids[start..end].iter().enumerate() {
                let p = ds.point(id);
                let mut best = 0u32;
                let mut best_d = f32::INFINITY;
                for c in 0..k {
                    let d = squared_euclidean(p, &centers[c * dim..(c + 1) * dim]);
                    if d < best_d {
                        best_d = d;
                        best = c as u32;
                    }
                }
                assign[i] = best;
            }
            // Update step.
            let mut sums = vec![0.0f64; k * dim];
            let mut counts = vec![0usize; k];
            for (i, &id) in ids[start..end].iter().enumerate() {
                let c = assign[i] as usize;
                counts[c] += 1;
                for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(ds.point(id)) {
                    *s += x as f64;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for d in 0..dim {
                        centers[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32;
                    }
                }
            }
        }
        // Balance guard: if one cluster swallowed (almost) everything, fall
        // back to an even strided split so recursion always terminates.
        let mut counts = vec![0usize; k];
        for &a in &assign {
            counts[a as usize] += 1;
        }
        if counts.iter().filter(|&&c| c > 0).count() < 2 {
            for (i, a) in assign.iter_mut().enumerate() {
                *a = (i % k) as u32;
            }
        }
        // Stable-partition ids by cluster.
        let mut order: Vec<usize> = (0..count).collect();
        order.sort_by_key(|&i| assign[i]);
        let reordered: Vec<u32> = order.iter().map(|&i| ids[start + i]).collect();
        ids[start..end].copy_from_slice(&reordered);
        let mut boundaries = vec![start];
        {
            let mut acc = start;
            let mut sorted_counts = vec![0usize; k];
            for &a in &assign {
                sorted_counts[a as usize] += 1;
            }
            for &sc in sorted_counts.iter().take(k) {
                acc += sc;
                boundaries.push(acc);
            }
        }
        nodes.push(Node::Internal {
            centers,
            children: Vec::new(),
        });
        let mut children = Vec::with_capacity(k);
        for c in 0..k {
            let (s, e) = (boundaries[c], boundaries[c + 1]);
            children.push(Self::build_node(ds, ids, s, e, branch, leaf_size, nodes));
        }
        if let Node::Internal { children: ch, .. } = &mut nodes[me as usize] {
            *ch = children;
        }
        me
    }

    /// Approximate k-NN with a distance-computation budget. Returns the
    /// pool and the distances spent (center visits included).
    pub fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        max_checks: usize,
    ) -> (Vec<Neighbor>, u64) {
        let mut pool: Vec<Neighbor> = Vec::with_capacity(k + 1);
        let mut checks = 0u64;
        // Best-first frontier of (center distance, node id).
        let mut frontier: Vec<(f32, u32)> = vec![(0.0, 0)];
        while !frontier.is_empty() && (checks as usize) < max_checks {
            let idx = frontier
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                .map(|(i, _)| i)
                .unwrap();
            let (_, node) = frontier.swap_remove(idx);
            match &self.nodes[node as usize] {
                Node::Leaf { start, end } => {
                    for &id in &self.ids[*start as usize..*end as usize] {
                        checks += 1;
                        insert_into_pool(&mut pool, k, Neighbor::new(id, ds.dist_to(query, id)));
                        if checks as usize >= max_checks {
                            break;
                        }
                    }
                }
                Node::Internal { centers, children } => {
                    for (c, &child) in children.iter().enumerate() {
                        let d =
                            squared_euclidean(query, &centers[c * self.dim..(c + 1) * self.dim]);
                        checks += 1;
                        frontier.push((d, child));
                    }
                }
            }
        }
        (pool, checks)
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let centers: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::Internal { centers, children } => {
                    centers.len() * 4 + children.len() * 4 + std::mem::size_of::<Node>()
                }
                Node::Leaf { .. } => std::mem::size_of::<Node>(),
            })
            .sum();
        centers + self.ids.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::synthetic::MixtureSpec;

    #[test]
    fn leaves_partition_all_points() {
        let (ds, _) = MixtureSpec::table10(8, 400, 4, 3.0, 10).generate();
        let t = BkTree::build(&ds, 4, 16);
        let mut seen = vec![false; ds.len()];
        for n in &t.nodes {
            if let Node::Leaf { start, end } = n {
                for &id in &t.ids[*start as usize..*end as usize] {
                    assert!(!seen[id as usize]);
                    seen[id as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn search_quality_on_clustered_data() {
        let (ds, q) = MixtureSpec::table10(8, 600, 4, 2.0, 20).generate();
        let t = BkTree::build(&ds, 4, 16);
        let mut hits = 0usize;
        for qi in 0..q.len() as u32 {
            let query = q.point(qi);
            let (pool, _) = t.search(&ds, query, 5, 400);
            let truth: Vec<u32> = knn_scan(&ds, query, 5, None).iter().map(|n| n.id).collect();
            hits += pool.iter().filter(|n| truth.contains(&n.id)).count();
        }
        assert!(hits as f64 / (5 * q.len()) as f64 > 0.6, "hits={hits}");
    }

    #[test]
    fn budget_is_respected() {
        let (ds, q) = MixtureSpec::table10(8, 600, 4, 2.0, 1).generate();
        let t = BkTree::build(&ds, 4, 16);
        let (_, checks) = t.search(&ds, q.point(0), 5, 100);
        assert!(checks <= 100 + 16);
    }

    #[test]
    fn degenerate_identical_points_terminate() {
        let ds = Dataset::from_rows(&vec![vec![1.0, 2.0]; 50]);
        let t = BkTree::build(&ds, 4, 8);
        let (pool, _) = t.search(&ds, &[1.0, 2.0], 3, usize::MAX);
        assert_eq!(pool.len(), 3);
    }
}
