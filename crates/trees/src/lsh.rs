//! Sign-random-projection LSH (IEH's seed hashing, C4/C6).
//!
//! IEH obtains query-adjacent seeds from hash buckets; the original paper
//! used a MATLAB-built hash table. We substitute classic random-hyperplane
//! LSH: `bits` random hyperplanes per table give each point a `bits`-bit
//! signature; a query probes its own bucket and, if short of seeds,
//! single-bit-flip neighbor buckets (multi-probe). Seed lookup costs *no*
//! distance computations beyond `dim`-length dot products per table — we
//! charge those as distance computations for fair NDC accounting, since a
//! dot product and a distance have the same cost profile.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use weavess_data::distance::dot;
use weavess_data::Dataset;

/// One hash table of a sign-random-projection LSH index.
struct Table {
    /// `bits` hyperplane normals, row-major (bits × dim).
    planes: Vec<f32>,
    buckets: HashMap<u64, Vec<u32>>,
}

/// A multi-table random-hyperplane LSH index.
pub struct LshTable {
    tables: Vec<Table>,
    bits: usize,
    dim: usize,
}

impl LshTable {
    /// Builds `n_tables` tables of `bits` hyperplanes each.
    pub fn build(ds: &Dataset, n_tables: usize, bits: usize, rng: &mut StdRng) -> Self {
        let bits = bits.clamp(1, 63);
        let dim = ds.dim();
        let mut tables = Vec::with_capacity(n_tables.max(1));
        for _ in 0..n_tables.max(1) {
            let planes: Vec<f32> = (0..bits * dim)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect();
            let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
            for id in 0..ds.len() as u32 {
                let sig = signature(ds.point(id), &planes, bits, dim);
                buckets.entry(sig).or_default().push(id);
            }
            tables.push(Table { planes, buckets });
        }
        LshTable { tables, bits, dim }
    }

    /// Up to `count` candidate seed ids for `query`, probing each table's
    /// home bucket first and then single-bit-flip buckets. Also returns the
    /// hashing cost in distance-computation equivalents (one per table:
    /// `bits` dot products ≈ `bits/dim`·dim mults, conservatively one NDC
    /// per table per probe level).
    pub fn seeds(&self, query: &[f32], count: usize) -> (Vec<u32>, u64) {
        let mut out: Vec<u32> = Vec::with_capacity(count);
        let mut cost = 0u64;
        for t in &self.tables {
            cost += 1;
            let sig = signature(query, &t.planes, self.bits, self.dim);
            if let Some(b) = t.buckets.get(&sig) {
                push_unique(&mut out, b, count);
            }
            if out.len() >= count {
                break;
            }
            // Multi-probe: flip one bit at a time.
            for bit in 0..self.bits {
                if let Some(b) = t.buckets.get(&(sig ^ (1u64 << bit))) {
                    push_unique(&mut out, b, count);
                    if out.len() >= count {
                        break;
                    }
                }
            }
            if out.len() >= count {
                break;
            }
        }
        (out, cost)
    }

    /// Approximate heap footprint in bytes (planes + bucket lists). This is
    /// the "additional index structure" memory the paper charges IEH with
    /// (Table 5's MO column).
    pub fn memory_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                t.planes.len() * 4
                    + t.buckets
                        .values()
                        .map(|v| 8 + v.len() * 4 + 16)
                        .sum::<usize>()
            })
            .sum()
    }
}

fn signature(p: &[f32], planes: &[f32], bits: usize, dim: usize) -> u64 {
    let mut sig = 0u64;
    for b in 0..bits {
        if dot(p, &planes[b * dim..(b + 1) * dim]) >= 0.0 {
            sig |= 1u64 << b;
        }
    }
    sig
}

fn push_unique(out: &mut Vec<u32>, src: &[u32], cap: usize) {
    for &id in src {
        if out.len() >= cap {
            return;
        }
        if !out.contains(&id) {
            out.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::synthetic::MixtureSpec;

    #[test]
    fn every_point_is_bucketed() {
        let (ds, _) = MixtureSpec::table10(16, 300, 3, 3.0, 10).generate();
        let mut rng = StdRng::seed_from_u64(21);
        let lsh = LshTable::build(&ds, 2, 8, &mut rng);
        let total: usize = lsh.tables[0].buckets.values().map(|v| v.len()).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn seeds_are_unique_and_bounded() {
        let (ds, q) = MixtureSpec::table10(16, 300, 3, 3.0, 10).generate();
        let mut rng = StdRng::seed_from_u64(22);
        let lsh = LshTable::build(&ds, 3, 8, &mut rng);
        let (seeds, cost) = lsh.seeds(q.point(0), 12);
        assert!(seeds.len() <= 12);
        assert!(cost >= 1);
        let mut d = seeds.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), seeds.len());
    }

    #[test]
    fn lsh_seeds_beat_random_on_average() {
        // Seeds from LSH buckets should be closer to the query than the
        // dataset average — that is their entire purpose in IEH.
        let (ds, q) = MixtureSpec::table10(16, 1000, 5, 2.0, 30).generate();
        let mut rng = StdRng::seed_from_u64(23);
        let lsh = LshTable::build(&ds, 4, 10, &mut rng);
        let mut seed_better = 0usize;
        let mut tried = 0usize;
        for qi in 0..q.len() as u32 {
            let query = q.point(qi);
            let (seeds, _) = lsh.seeds(query, 5);
            if seeds.is_empty() {
                continue;
            }
            tried += 1;
            let seed_avg: f32 =
                seeds.iter().map(|&s| ds.dist_to(query, s)).sum::<f32>() / seeds.len() as f32;
            // Average distance to 5 random-ish points (strided sample).
            let rand_avg: f32 = (0..5)
                .map(|i| ds.dist_to(query, (i * ds.len() / 5) as u32))
                .sum::<f32>()
                / 5.0;
            if seed_avg < rand_avg {
                seed_better += 1;
            }
        }
        assert!(tried > 0);
        assert!(
            seed_better as f64 / tried as f64 > 0.7,
            "{seed_better}/{tried}"
        );
    }

    #[test]
    fn nearest_neighbor_often_shares_a_bucket_region() {
        let (ds, q) = MixtureSpec::table10(16, 800, 4, 2.0, 20).generate();
        let mut rng = StdRng::seed_from_u64(24);
        let lsh = LshTable::build(&ds, 6, 8, &mut rng);
        let mut found = 0usize;
        for qi in 0..q.len() as u32 {
            let query = q.point(qi);
            let truth: Vec<u32> = knn_scan(&ds, query, 10, None)
                .iter()
                .map(|n| n.id)
                .collect();
            let (seeds, _) = lsh.seeds(query, 50);
            if seeds.iter().any(|s| truth.contains(s)) {
                found += 1;
            }
        }
        assert!(found as f64 / q.len() as f64 > 0.5, "found={found}");
    }
}
