//! ML1 stand-in — *learned routing* (Baranchuk et al., "Learning to Route
//! in Similarity Graphs").
//!
//! The original trains per-vertex representations (GPU, hours, tens of
//! GB — Table 6). The stand-in keeps the measured trade-off on CPU:
//! routing decisions are made with *compressed* (PCA) vectors — each
//! evaluation costs `m/d` of a full distance — and the final candidates
//! are reranked with full vectors. Extra memory: a second, compressed
//! copy of every point plus the projection, charged to the index.

use crate::pca::Pca;
use weavess_core::search::{SearchScratch, SearchStats};
use weavess_data::neighbor::insert_into_pool;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// An ML1-optimized index wrapping a base graph.
pub struct Ml1Index {
    graph: CsrGraph,
    entries: Vec<u32>,
    pca: Pca,
    compressed: Dataset,
    /// Wall-clock seconds spent preprocessing (PCA fit + projection).
    pub preprocessing_secs: f64,
}

/// Work counters distinguishing compressed from full evaluations.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ml1Stats {
    /// Compressed (m-dimensional) distance evaluations.
    pub compressed_evals: u64,
    /// Full-dimension distance evaluations (reranking).
    pub full_evals: u64,
}

impl Ml1Stats {
    /// Full-distance-equivalents: compressed evaluations cost `m/d` each.
    pub fn effective_ndc(&self, m: usize, d: usize) -> f64 {
        self.full_evals as f64 + self.compressed_evals as f64 * m as f64 / d as f64
    }
}

/// Builds the ML1 optimization over an existing graph.
pub fn optimize(ds: &Dataset, graph: CsrGraph, entries: Vec<u32>, m: usize) -> Ml1Index {
    let t0 = std::time::Instant::now();
    let pca = Pca::fit(ds, m, ds.len().min(20_000));
    let compressed = pca.project_dataset(ds);
    Ml1Index {
        graph,
        entries,
        pca,
        compressed,
        preprocessing_secs: t0.elapsed().as_secs_f64(),
    }
}

impl Ml1Index {
    /// Searches with compressed routing and full-vector reranking.
    pub fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, Ml1Stats) {
        let mut stats = Ml1Stats::default();
        let cq = self.pca.project(query);
        // Best-first over compressed distances.
        scratch.next_epoch();
        let mut cstats = SearchStats::default();
        let pool = weavess_core::search::beam_search(
            &self.compressed,
            &self.graph,
            &cq,
            &self.entries,
            beam.max(k),
            scratch,
            &mut cstats,
        );
        stats.compressed_evals = cstats.ndc;
        // Rerank the surviving pool with full distances.
        let mut rer: Vec<Neighbor> = Vec::with_capacity(pool.len());
        for c in &pool {
            stats.full_evals += 1;
            insert_into_pool(
                &mut rer,
                pool.len(),
                Neighbor::new(c.id, ds.dist_to(query, c.id)),
            );
        }
        rer.truncate(k);
        (rer, stats)
    }

    /// Extra memory the optimization adds (compressed copy + projection).
    pub fn extra_memory_bytes(&self) -> usize {
        self.compressed.memory_bytes() + self.pca.memory_bytes()
    }

    /// Compressed dimensionality.
    pub fn compressed_dim(&self) -> usize {
        self.pca.out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_core::algorithms::nsg::{self, NsgParams};
    use weavess_core::index::AnnIndex;
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;

    fn setup() -> (Dataset, Dataset, weavess_core::index::FlatIndex) {
        // Subspace data: PCA compression is meaningful, as on real
        // features.
        let spec = MixtureSpec {
            intrinsic_dim: Some(8),
            noise: 0.05,
            ..MixtureSpec::table10(48, 2_000, 1, 5.0, 30)
        };
        let (ds, qs) = spec.generate();
        let idx = nsg::build(&ds, &NsgParams::tuned(4, 1));
        (ds, qs, idx)
    }

    #[test]
    fn ml1_keeps_recall_with_fewer_effective_distances() {
        let (ds, qs, base) = setup();
        let gt = ground_truth(&ds, &qs, 10, 4);
        let entries = vec![ds.medoid()];
        let ml1 = optimize(&ds, base.graph.clone(), entries, 12);
        let mut scratch = SearchScratch::new(ds.len());
        let mut ctx = weavess_core::index::SearchContext::new(ds.len());
        let (mut base_hits, mut ml1_hits) = (0.0f64, 0.0f64);
        let mut ml1_ndc = 0.0f64;
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            let b: Vec<u32> = base
                .search(&ds, q, 10, 60, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            base_hits += recall(&b, &gt[qi as usize]);
            let (m, s) = ml1.search(&ds, q, 10, 60, &mut scratch);
            let mids: Vec<u32> = m.iter().map(|n| n.id).collect();
            ml1_hits += recall(&mids, &gt[qi as usize]);
            ml1_ndc += s.effective_ndc(12, ds.dim());
        }
        let base_ndc = ctx.stats.ndc as f64;
        let nq = qs.len() as f64;
        // The stand-in's defining trade: comparable recall, fewer
        // full-distance-equivalents.
        assert!(
            ml1_hits / nq > base_hits / nq - 0.1,
            "{ml1_hits} vs {base_hits}"
        );
        assert!(ml1_ndc < base_ndc, "ml1 ndc {ml1_ndc} !< base {base_ndc}");
        assert!(ml1_hits / nq > 0.7);
    }

    #[test]
    fn ml1_charges_extra_memory() {
        let (ds, _, base) = setup();
        let ml1 = optimize(&ds, base.graph.clone(), vec![0], 12);
        assert!(ml1.extra_memory_bytes() > ds.len() * 12 * 4);
        assert!(ml1.preprocessing_secs >= 0.0);
        assert_eq!(ml1.compressed_dim(), 12);
    }
}
