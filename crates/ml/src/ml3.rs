//! ML3 stand-in — *learned dimensionality reduction* (Prokhorenkova &
//! Shekhovtsov, ICML'20): map the dataset to a lower-dimensional space
//! that preserves local geometry, search the graph there, rerank the
//! survivors with full-dimension distances.
//!
//! The original learns the map; the stand-in uses PCA, which preserves
//! exactly the local-geometry property on the feature-like (low intrinsic
//! dimension) data the survey evaluates. The measured shape survives:
//! a big speedup-recall gain, paid for with a full extra copy of the
//! dataset (Table 24's memory column).

use crate::pca::Pca;
use weavess_core::algorithms::nsg::{self, NsgParams};
use weavess_core::index::{AnnIndex, SearchContext};
use weavess_core::search::VisitedPool;
use weavess_data::neighbor::insert_into_pool;
use weavess_data::{Dataset, Neighbor};

/// An ML3-optimized index: a graph over the reduced-space dataset.
pub struct Ml3Index {
    pca: Pca,
    reduced: Dataset,
    inner: weavess_core::index::FlatIndex,
    /// Wall-clock seconds spent preprocessing (fit + project + rebuild).
    pub preprocessing_secs: f64,
}

/// Builds the ML3 optimization: reduce to `m` dimensions and build an NSG
/// (the paper pairs ML3 with NSG) over the reduced points.
pub fn optimize(ds: &Dataset, m: usize, nsg_params: &NsgParams) -> Ml3Index {
    let t0 = std::time::Instant::now();
    let pca = Pca::fit(ds, m, ds.len().min(20_000));
    let reduced = pca.project_dataset(ds);
    let inner = nsg::build(&reduced, nsg_params);
    Ml3Index {
        pca,
        reduced,
        inner,
        preprocessing_secs: t0.elapsed().as_secs_f64(),
    }
}

impl Ml3Index {
    /// Searches in the reduced space, reranks with full distances.
    /// Returns `(results, reduced_evals, full_evals)`.
    pub fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
    ) -> (Vec<Neighbor>, u64, u64) {
        let rq = self.pca.project(query);
        let before = ctx.stats.ndc;
        let pool = self
            .inner
            .search(&self.reduced, &rq, beam.max(k), beam, ctx);
        let reduced_evals = ctx.stats.ndc - before;
        let mut rer: Vec<Neighbor> = Vec::with_capacity(pool.len());
        let mut full_evals = 0u64;
        for c in &pool {
            full_evals += 1;
            insert_into_pool(
                &mut rer,
                pool.len(),
                Neighbor::new(c.id, ds.dist_to(query, c.id)),
            );
        }
        rer.truncate(k);
        (rer, reduced_evals, full_evals)
    }

    /// Extra memory: the reduced copy plus the projection (the reduced
    /// graph replaces the base graph, so it is not double-charged).
    pub fn extra_memory_bytes(&self) -> usize {
        self.reduced.memory_bytes() + self.pca.memory_bytes()
    }

    /// The reduced dimensionality.
    pub fn reduced_dim(&self) -> usize {
        self.pca.out_dim()
    }

    /// Fresh context sized for this index.
    pub fn context(&self) -> (SearchContext, VisitedPool) {
        (
            SearchContext::new(self.reduced.len()),
            VisitedPool::new(self.reduced.len()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;

    fn setup() -> (Dataset, Dataset) {
        let spec = MixtureSpec {
            intrinsic_dim: Some(8),
            noise: 0.05,
            ..MixtureSpec::table10(64, 2_000, 1, 5.0, 30)
        };
        spec.generate()
    }

    #[test]
    fn ml3_keeps_recall_with_cheaper_distances() {
        let (ds, qs) = setup();
        let gt = ground_truth(&ds, &qs, 10, 4);
        let ml3 = optimize(&ds, 12, &NsgParams::tuned(4, 1));
        let (mut ctx, _) = ml3.context();
        let mut total = 0.0;
        let mut reduced_evals = 0u64;
        for qi in 0..qs.len() as u32 {
            let (r, re, _) = ml3.search(&ds, qs.point(qi), 10, 60, &mut ctx);
            let ids: Vec<u32> = r.iter().map(|n| n.id).collect();
            total += recall(&ids, &gt[qi as usize]);
            reduced_evals += re;
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.8, "recall={r}");
        assert!(reduced_evals > 0);
        // Each reduced eval costs 12/64 of a full one: the effective NDC
        // advantage is the whole point.
        assert_eq!(ml3.reduced_dim(), 12);
    }

    #[test]
    fn ml3_memory_and_time_are_reported() {
        let (ds, _) = setup();
        let ml3 = optimize(&ds, 12, &NsgParams::tuned(4, 1));
        assert!(ml3.preprocessing_secs > 0.0);
        assert!(ml3.extra_memory_bytes() >= ds.len() * 12 * 4);
    }
}
