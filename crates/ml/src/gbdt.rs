//! Gradient-boosted decision stumps (depth-1 trees) from scratch —
//! the regressor behind the ML2 early-termination stand-in.
//!
//! Squared-error boosting: each round fits one stump (feature, threshold,
//! left/right value) to the current residuals, scaled by a learning rate.

/// One stump: `x[feature] < threshold ? left : right`.
#[derive(Debug, Clone, Copy)]
struct Stump {
    feature: usize,
    threshold: f32,
    left: f32,
    right: f32,
}

/// A fitted gradient-boosted stump ensemble.
#[derive(Debug, Clone)]
pub struct Gbdt {
    base: f32,
    stumps: Vec<Stump>,
    learning_rate: f32,
}

/// Training configuration.
#[derive(Debug, Clone)]
pub struct GbdtParams {
    /// Boosting rounds (number of stumps).
    pub rounds: usize,
    /// Shrinkage per stump.
    pub learning_rate: f32,
    /// Candidate thresholds examined per feature (quantiles).
    pub quantiles: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            rounds: 60,
            learning_rate: 0.2,
            quantiles: 16,
        }
    }
}

impl Gbdt {
    /// Fits on row-major features (`n` rows × `n_features`) and targets.
    ///
    /// # Panics
    /// Panics on empty or inconsistently-shaped input.
    pub fn fit(features: &[Vec<f32>], targets: &[f32], params: &GbdtParams) -> Gbdt {
        assert!(!features.is_empty());
        assert_eq!(features.len(), targets.len());
        let n = features.len();
        let n_feat = features[0].len();
        let base = targets.iter().sum::<f32>() / n as f32;
        let mut residual: Vec<f32> = targets.iter().map(|&t| t - base).collect();
        let mut stumps = Vec::with_capacity(params.rounds);
        for _ in 0..params.rounds {
            let mut best: Option<(f64, Stump)> = None;
            for f in 0..n_feat {
                // Quantile thresholds on this feature.
                let mut vals: Vec<f32> = features.iter().map(|r| r[f]).collect();
                vals.sort_by(|a, b| a.total_cmp(b));
                for q in 1..params.quantiles {
                    let threshold = vals[q * (n - 1) / params.quantiles];
                    // Means of residuals on each side.
                    let (mut sl, mut nl, mut sr, mut nr) = (0.0f64, 0usize, 0.0f64, 0usize);
                    for (row, &r) in features.iter().zip(&residual) {
                        if row[f] < threshold {
                            sl += r as f64;
                            nl += 1;
                        } else {
                            sr += r as f64;
                            nr += 1;
                        }
                    }
                    if nl == 0 || nr == 0 {
                        continue;
                    }
                    let ml = sl / nl as f64;
                    let mr = sr / nr as f64;
                    // Variance reduction = nl·ml² + nr·mr².
                    let gain = nl as f64 * ml * ml + nr as f64 * mr * mr;
                    if best.is_none_or(|(g, _)| gain > g) {
                        best = Some((
                            gain,
                            Stump {
                                feature: f,
                                threshold,
                                left: ml as f32,
                                right: mr as f32,
                            },
                        ));
                    }
                }
            }
            let Some((_, stump)) = best else { break };
            for (row, r) in features.iter().zip(residual.iter_mut()) {
                let pred = if row[stump.feature] < stump.threshold {
                    stump.left
                } else {
                    stump.right
                };
                *r -= params.learning_rate * pred;
            }
            stumps.push(stump);
        }
        Gbdt {
            base,
            stumps,
            learning_rate: params.learning_rate,
        }
    }

    /// Predicts one row.
    pub fn predict(&self, row: &[f32]) -> f32 {
        let mut y = self.base;
        for s in &self.stumps {
            let v = if row[s.feature] < s.threshold {
                s.left
            } else {
                s.right
            };
            y += self.learning_rate * v;
        }
        y
    }

    /// Heap bytes of the fitted model.
    pub fn memory_bytes(&self) -> usize {
        self.stumps.len() * std::mem::size_of::<Stump>() + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_step_function() {
        let features: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
        let targets: Vec<f32> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let model = Gbdt::fit(&features, &targets, &GbdtParams::default());
        assert!((model.predict(&[10.0]) - 1.0).abs() < 0.3);
        assert!((model.predict(&[90.0]) - 5.0).abs() < 0.3);
    }

    #[test]
    fn fits_an_additive_two_feature_target() {
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                features.push(vec![i as f32, j as f32]);
                targets.push(2.0 * (i as f32) + 0.5 * (j as f32));
            }
        }
        let model = Gbdt::fit(
            &features,
            &targets,
            &GbdtParams {
                rounds: 200,
                ..Default::default()
            },
        );
        // R² must be high.
        let mean = targets.iter().sum::<f32>() / targets.len() as f32;
        let mut ss_res = 0.0f64;
        let mut ss_tot = 0.0f64;
        for (row, &t) in features.iter().zip(&targets) {
            ss_res += ((model.predict(row) - t) as f64).powi(2);
            ss_tot += ((t - mean) as f64).powi(2);
        }
        let r2 = 1.0 - ss_res / ss_tot;
        assert!(r2 > 0.9, "r2={r2}");
    }

    #[test]
    fn constant_target_predicts_constant() {
        let features: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let targets = vec![3.0f32; 10];
        let model = Gbdt::fit(&features, &targets, &GbdtParams::default());
        assert!((model.predict(&[4.2]) - 3.0).abs() < 1e-3);
    }
}
