#![warn(missing_docs)]

//! Machine-learning-based optimizations for graph ANNS (§5.5, Appendix R).
//!
//! The paper evaluates three published ML add-ons and finds they buy a
//! better speedup-recall trade-off at heavy preprocessing and memory cost
//! (Table 6/24, Figures 9/19). This crate reproduces that *shape* with
//! pure-CPU stand-ins (the originals need GPU training; DESIGN.md §5):
//!
//! - [`ml1`] — *learned routing* (Baranchuk et al.): routing over
//!   PCA-compressed vectors with full-vector rerank. Same trade: extra
//!   per-point representation memory, cheaper routing steps.
//! - [`ml2`] — *learned adaptive early termination* (Li et al.):
//!   from-scratch gradient-boosted decision stumps ([`gbdt`]) predict each
//!   query's required search effort from early-search features.
//! - [`ml3`] — *learned dimensionality reduction* (Prokhorenkova et al.):
//!   PCA projection ([`pca`]), graph search in the reduced space,
//!   full-dimension rerank.

pub mod gbdt;
pub mod ml1;
pub mod ml2;
pub mod ml3;
pub mod pca;
