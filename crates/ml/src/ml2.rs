//! ML2 stand-in — *learned adaptive early termination* (Li et al.,
//! SIGMOD'20): most queries need far less search than the worst case, so
//! a regressor predicts each query's required effort from features of the
//! search's early state and stops as soon as that budget is spent.
//!
//! Faithful to the original's recipe: gradient-boosted trees (our
//! [`crate::gbdt`] stumps) over features collected at a fixed checkpoint,
//! predicting the expansions needed for the true nearest neighbor; at
//! query time the search runs to `predicted × margin` expansions.

use crate::gbdt::{Gbdt, GbdtParams};
use weavess_core::search::VisitedPool;
use weavess_data::ground_truth::knn_scan;
use weavess_data::neighbor::insert_into_pool;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// A resumable best-first search: expand up to a hop budget, inspect
/// state, continue.
struct ResumableBeam<'a> {
    ds: &'a Dataset,
    g: &'a CsrGraph,
    query: &'a [f32],
    beam: usize,
    pool: Vec<Neighbor>,
    expanded: Vec<bool>,
    cursor: usize,
    /// Total expansions so far.
    pub hops: u64,
    /// Total distance computations so far.
    pub ndc: u64,
}

impl<'a> ResumableBeam<'a> {
    fn start(
        ds: &'a Dataset,
        g: &'a CsrGraph,
        query: &'a [f32],
        seeds: &[u32],
        beam: usize,
        visited: &mut VisitedPool,
    ) -> Self {
        visited.next_epoch();
        let mut pool = Vec::with_capacity(beam + 1);
        let mut ndc = 0u64;
        for &s in seeds {
            if visited.visit(s) {
                ndc += 1;
                insert_into_pool(&mut pool, beam, Neighbor::new(s, ds.dist_to(query, s)));
            }
        }
        let expanded = vec![false; pool.len()];
        ResumableBeam {
            ds,
            g,
            query,
            beam,
            pool,
            expanded,
            cursor: 0,
            hops: 0,
            ndc,
        }
    }

    /// Expands until `max_total_hops` or convergence; returns true when
    /// converged (no unexpanded candidate remains).
    fn run_until(&mut self, max_total_hops: u64, visited: &mut VisitedPool) -> bool {
        while self.hops < max_total_hops {
            // Find the nearest unexpanded candidate.
            let Some(k) = (0..self.pool.len()).find(|&i| !self.expanded[i]) else {
                return true;
            };
            let _ = self.cursor;
            self.cursor = k;
            self.expanded[k] = true;
            self.hops += 1;
            let v = self.pool[k].id;
            for &u in self.g.neighbors(v) {
                if !visited.visit(u) {
                    continue;
                }
                self.ndc += 1;
                let d = self.ds.dist_to(self.query, u);
                let n = Neighbor::new(u, d);
                let pos = self.pool.partition_point(|c| *c < n);
                if pos < self.pool.len() && self.pool[pos] == n {
                    continue;
                }
                if pos < self.beam {
                    self.pool.insert(pos, n);
                    self.expanded.insert(pos, false);
                    self.pool.truncate(self.beam);
                    self.expanded.truncate(self.beam);
                }
            }
        }
        (0..self.pool.len()).all(|i| self.expanded[i])
    }

    /// Feature vector of the current state (the original uses the query,
    /// the current best distances, and their ratios).
    fn features(&self) -> Vec<f32> {
        let d1 = self.pool.first().map_or(0.0, |n| n.dist);
        let dk = self
            .pool
            .get(9.min(self.pool.len().saturating_sub(1)))
            .map_or(0.0, |n| n.dist);
        let dlast = self.pool.last().map_or(0.0, |n| n.dist);
        vec![
            d1,
            dk,
            dlast,
            if dk > 0.0 { d1 / dk } else { 1.0 },
            if dlast > 0.0 { dk / dlast } else { 1.0 },
            self.hops as f32,
        ]
    }
}

/// An ML2-optimized index wrapping a base graph.
pub struct Ml2Index {
    graph: CsrGraph,
    entries: Vec<u32>,
    model: Gbdt,
    checkpoint_hops: u64,
    margin: f32,
    /// Wall-clock seconds spent training.
    pub training_secs: f64,
}

/// Training + search configuration.
#[derive(Debug, Clone)]
pub struct Ml2Params {
    /// Beam width used during training and search.
    pub beam: usize,
    /// Fixed checkpoint (expansions) where features are read.
    pub checkpoint_hops: u64,
    /// Safety multiplier on the predicted budget.
    pub margin: f32,
    /// Boosting configuration.
    pub gbdt: GbdtParams,
}

impl Default for Ml2Params {
    fn default() -> Self {
        Ml2Params {
            beam: 60,
            checkpoint_hops: 10,
            margin: 1.3,
            gbdt: GbdtParams::default(),
        }
    }
}

/// Trains the early-termination model on `train_queries`.
pub fn optimize(
    ds: &Dataset,
    graph: CsrGraph,
    entries: Vec<u32>,
    train_queries: &Dataset,
    params: &Ml2Params,
) -> Ml2Index {
    let t0 = std::time::Instant::now();
    let mut visited = VisitedPool::new(ds.len());
    let mut features = Vec::new();
    let mut targets = Vec::new();
    for qi in 0..train_queries.len() as u32 {
        let q = train_queries.point(qi);
        let truth = knn_scan(ds, q, 1, None)[0].id;
        let mut beam = ResumableBeam::start(ds, &graph, q, &entries, params.beam, &mut visited);
        beam.run_until(params.checkpoint_hops, &mut visited);
        let feats = beam.features();
        // Continue until the true NN is at the pool head (or convergence),
        // recording how many expansions that took.
        let needed;
        loop {
            if beam.pool.first().map(|n| n.id) == Some(truth) {
                needed = beam.hops;
                break;
            }
            let before = beam.hops;
            let converged = beam.run_until(beam.hops + 5, &mut visited);
            if beam.pool.first().map(|n| n.id) == Some(truth) {
                needed = beam.hops;
                break;
            }
            if converged || beam.hops == before {
                needed = beam.hops; // never found: budget = full convergence
                break;
            }
        }
        features.push(feats);
        targets.push(needed as f32);
    }
    let model = Gbdt::fit(&features, &targets, &params.gbdt);
    Ml2Index {
        graph,
        entries,
        model,
        checkpoint_hops: params.checkpoint_hops,
        margin: params.margin,
        training_secs: t0.elapsed().as_secs_f64(),
    }
}

impl Ml2Index {
    /// Adaptive-termination search: returns `(results, ndc, hops)`.
    pub fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        visited: &mut VisitedPool,
    ) -> (Vec<Neighbor>, u64, u64) {
        let mut rb = ResumableBeam::start(ds, &self.graph, query, &self.entries, beam, visited);
        rb.run_until(self.checkpoint_hops, visited);
        let predicted = self.model.predict(&rb.features()).max(0.0);
        let budget = (predicted * self.margin).ceil() as u64;
        rb.run_until(budget.max(self.checkpoint_hops), visited);
        let mut out = rb.pool.clone();
        out.truncate(k);
        (out, rb.ndc, rb.hops)
    }

    /// Extra memory the optimization adds (the model).
    pub fn extra_memory_bytes(&self) -> usize {
        self.model.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_core::algorithms::nsg::{self, NsgParams};
    use weavess_core::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;

    fn setup() -> (Dataset, Dataset, Dataset, weavess_core::index::FlatIndex) {
        let (ds, qs) = MixtureSpec::table10(16, 2_000, 1, 5.0, 60).generate();
        let train = qs.subset(&(0..30u32).collect::<Vec<_>>());
        let test = qs.subset(&(30..60u32).collect::<Vec<_>>());
        let idx = nsg::build(&ds, &NsgParams::tuned(4, 1));
        (ds, train, test, idx)
    }

    #[test]
    fn ml2_terminates_earlier_at_similar_recall() {
        let (ds, train, test, base) = setup();
        let entries = vec![ds.medoid()];
        let ml2 = optimize(
            &ds,
            base.graph.clone(),
            entries,
            &train,
            &Ml2Params::default(),
        );
        let gt = ground_truth(&ds, &test, 10, 4);
        let mut visited = VisitedPool::new(ds.len());
        let mut ctx = SearchContext::new(ds.len());
        let (mut r_base, mut r_ml2) = (0.0f64, 0.0f64);
        let mut ndc_ml2 = 0u64;
        for qi in 0..test.len() as u32 {
            let q = test.point(qi);
            let b: Vec<u32> = base
                .search(&ds, q, 10, 60, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            r_base += recall(&b, &gt[qi as usize]);
            let (m, ndc, _) = ml2.search(&ds, q, 10, 60, &mut visited);
            let mids: Vec<u32> = m.iter().map(|n| n.id).collect();
            r_ml2 += recall(&mids, &gt[qi as usize]);
            ndc_ml2 += ndc;
        }
        let nq = test.len() as f64;
        // Early termination must save distance computations without
        // collapsing recall (the Figure 19 ML2 shape: slight latency
        // reduction at high precision).
        assert!(
            (ndc_ml2 as f64) < ctx.stats.ndc as f64,
            "ml2 {ndc_ml2} !< base {}",
            ctx.stats.ndc
        );
        assert!(r_ml2 / nq > r_base / nq - 0.15, "{r_ml2} vs {r_base}");
        assert!(r_ml2 / nq > 0.6, "recall {}", r_ml2 / nq);
    }

    #[test]
    fn ml2_reports_costs() {
        let (ds, train, _, base) = setup();
        let ml2 = optimize(
            &ds,
            base.graph.clone(),
            vec![ds.medoid()],
            &train,
            &Ml2Params::default(),
        );
        assert!(ml2.training_secs > 0.0);
        assert!(ml2.extra_memory_bytes() > 0);
    }
}
