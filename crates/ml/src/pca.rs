//! Principal component analysis from scratch: covariance + orthogonal
//! power iteration, no linear-algebra dependency.

use weavess_data::Dataset;

/// A fitted PCA projection onto the top `m` principal components.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Component matrix, row-major (`m` rows × `dim` columns).
    components: Vec<f32>,
    /// Data mean subtracted before projection.
    mean: Vec<f32>,
    m: usize,
    dim: usize,
}

impl Pca {
    /// Fits on up to `sample` points of `ds` (strided, deterministic) and
    /// keeps the top `m` components.
    pub fn fit(ds: &Dataset, m: usize, sample: usize) -> Pca {
        let dim = ds.dim();
        let m = m.clamp(1, dim);
        let n = ds.len();
        let take = sample.clamp(2, n);
        let stride = (n / take).max(1);
        let ids: Vec<u32> = (0..take).map(|i| (i * stride) as u32).collect();

        // Mean.
        let mut mean = vec![0.0f64; dim];
        for &id in &ids {
            for (acc, &x) in mean.iter_mut().zip(ds.point(id)) {
                *acc += x as f64;
            }
        }
        for v in &mut mean {
            *v /= ids.len() as f64;
        }

        // Covariance (d × d). Fine for the survey's dimensions (≤ 1369).
        let mut cov = vec![0.0f64; dim * dim];
        for &id in &ids {
            let p = ds.point(id);
            for i in 0..dim {
                let ci = p[i] as f64 - mean[i];
                let row = &mut cov[i * dim..(i + 1) * dim];
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot += ci * (p[j] as f64 - mean[j]);
                }
            }
        }
        let norm = (ids.len() - 1).max(1) as f64;
        for v in &mut cov {
            *v /= norm;
        }

        // Orthogonal power iteration for the top m eigenvectors.
        let mut components = vec![0.0f64; m * dim];
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for c in 0..m {
            let mut v: Vec<f64> = (0..dim).map(|_| next()).collect();
            for _ in 0..30 {
                // Deflate against previous components.
                for prev in 0..c {
                    let row = &components[prev * dim..(prev + 1) * dim];
                    let proj: f64 = v.iter().zip(row).map(|(a, b)| a * b).sum();
                    for (vd, r) in v.iter_mut().zip(row) {
                        *vd -= proj * r;
                    }
                }
                // Multiply by covariance.
                let mut w = vec![0.0f64; dim];
                for i in 0..dim {
                    let vi = v[i];
                    if vi != 0.0 {
                        let row = &cov[i * dim..(i + 1) * dim];
                        for (wj, &cj) in w.iter_mut().zip(row) {
                            *wj += vi * cj;
                        }
                    }
                }
                let norm: f64 = w.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-30);
                for (vd, wd) in v.iter_mut().zip(&w) {
                    *vd = wd / norm;
                }
            }
            // Final deflation + renormalization: the last covariance
            // multiply can reintroduce tiny components along earlier
            // eigenvectors.
            for prev in 0..c {
                let row = &components[prev * dim..(prev + 1) * dim];
                let proj: f64 = v.iter().zip(row).map(|(a, b)| a * b).sum();
                for (vd, r) in v.iter_mut().zip(row) {
                    *vd -= proj * r;
                }
            }
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-30);
            for vd in &mut v {
                *vd /= norm;
            }
            components[c * dim..(c + 1) * dim].copy_from_slice(&v);
        }

        Pca {
            components: components.iter().map(|&x| x as f32).collect(),
            mean: mean.iter().map(|&x| x as f32).collect(),
            m,
            dim,
        }
    }

    /// Projects one vector into the component space.
    pub fn project(&self, p: &[f32]) -> Vec<f32> {
        assert_eq!(p.len(), self.dim);
        (0..self.m)
            .map(|c| {
                let row = &self.components[c * self.dim..(c + 1) * self.dim];
                p.iter()
                    .zip(row)
                    .zip(&self.mean)
                    .map(|((&x, &w), &mu)| (x - mu) * w)
                    .sum()
            })
            .collect()
    }

    /// Projects a whole dataset.
    pub fn project_dataset(&self, ds: &Dataset) -> Dataset {
        let mut flat = Vec::with_capacity(ds.len() * self.m);
        for i in 0..ds.len() as u32 {
            flat.extend(self.project(ds.point(i)));
        }
        Dataset::from_flat(flat, ds.len(), self.m)
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.m
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.dim
    }

    /// Heap bytes of the fitted model.
    pub fn memory_bytes(&self) -> usize {
        (self.components.len() + self.mean.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::synthetic::MixtureSpec;

    /// Data generated on a low-dimensional subspace must be almost
    /// perfectly preserved by a PCA of that dimension: pairwise distances
    /// in projected space track full-space distances.
    #[test]
    fn pca_preserves_subspace_structure() {
        let spec = MixtureSpec {
            intrinsic_dim: Some(4),
            noise: 0.01,
            ..MixtureSpec::table10(32, 800, 1, 5.0, 10)
        };
        let (ds, _) = spec.generate();
        let pca = Pca::fit(&ds, 6, 400);
        let proj = pca.project_dataset(&ds);
        // Compare distance orderings on a few triples.
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in (0..600u32).step_by(7) {
            let (a, b, c) = (i, i + 1, i + 2);
            let full = ds.dist(a, b) < ds.dist(a, c);
            let red = proj.dist(a, b) < proj.dist(a, c);
            total += 1;
            if full == red {
                agree += 1;
            }
        }
        assert!(agree as f64 / total as f64 > 0.9, "{agree}/{total}");
    }

    #[test]
    fn components_are_orthonormal() {
        let (ds, _) = MixtureSpec::table10(16, 500, 3, 5.0, 10).generate();
        let pca = Pca::fit(&ds, 5, 300);
        for i in 0..5 {
            for j in 0..5 {
                let ri = &pca.components[i * 16..(i + 1) * 16];
                let rj = &pca.components[j * 16..(j + 1) * 16];
                let dot: f32 = ri.iter().zip(rj).map(|(a, b)| a * b).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-2, "({i},{j}) dot={dot}");
            }
        }
    }

    #[test]
    fn projection_shape_and_memory() {
        let (ds, _) = MixtureSpec::table10(16, 200, 2, 5.0, 10).generate();
        let pca = Pca::fit(&ds, 4, 100);
        assert_eq!(pca.out_dim(), 4);
        let p = pca.project_dataset(&ds);
        assert_eq!(p.len(), ds.len());
        assert_eq!(p.dim(), 4);
        assert_eq!(pca.memory_bytes(), (4 * 16 + 16) * 4);
    }
}
