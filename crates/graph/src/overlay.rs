//! The catapult overlay segment: trace-mined shortcut edges kept *apart*
//! from the base graph.
//!
//! Adaptation (the `core::adapt` pass) must not disturb the base graph —
//! caller-visible ids, persisted base bytes, and the replayability of
//! pre-adaptation traces all depend on it staying untouched. So shortcut
//! edges live in their own segment:
//!
//! - [`GraphOverlay`] is the bounded build-time container: per-vertex
//!   extra-degree budget enforced with a typed [`OverlayError`] on every
//!   insertion, duplicates and self-loops rejected.
//! - A frozen overlay is just another [`CsrGraph`] over the same vertex
//!   set; [`merge_overlay`] materializes the combined routing graph
//!   (base edges first, overlay edges appended per vertex) so every
//!   router traverses base+overlay transparently through the ordinary
//!   [`crate::adjacency::GraphView`] — no hot-path branching.
//! - [`strip_overlay`] inverts the merge exactly (overlay edges are the
//!   per-vertex suffix), which is how persistence recovers the base
//!   segment without storing the adjacency twice.

use crate::adjacency::CsrGraph;

/// A typed overlay-insertion failure. The degree budget is the contract
/// the adaptation pass advertises ("at most `budget` extra edges per
/// vertex"); violating it is an error callers must see, not a silent
/// clamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlayError {
    /// Inserting would push `vertex` past the per-vertex budget.
    DegreeBudget {
        /// The saturated source vertex.
        vertex: u32,
        /// The configured per-vertex extra-degree budget.
        budget: usize,
    },
    /// An endpoint is not a vertex of the graph.
    OutOfRange {
        /// The offending id.
        vertex: u32,
        /// Number of vertices.
        n: usize,
    },
    /// A shortcut from a vertex to itself.
    SelfLoop {
        /// The vertex.
        vertex: u32,
    },
    /// The overlay already holds this edge.
    Duplicate {
        /// Source vertex.
        src: u32,
        /// Target vertex.
        dst: u32,
    },
}

impl std::fmt::Display for OverlayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverlayError::DegreeBudget { vertex, budget } => write!(
                f,
                "vertex {vertex} is at its extra-degree budget ({budget})"
            ),
            OverlayError::OutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range (n={n})")
            }
            OverlayError::SelfLoop { vertex } => {
                write!(f, "self-loop shortcut at vertex {vertex}")
            }
            OverlayError::Duplicate { src, dst } => {
                write!(f, "duplicate overlay edge {src} -> {dst}")
            }
        }
    }
}

impl std::error::Error for OverlayError {}

/// Build-time container for shortcut edges with a per-vertex extra-degree
/// budget. Freeze into a [`CsrGraph`] overlay segment when mining is done.
#[derive(Debug, Clone)]
pub struct GraphOverlay {
    lists: Vec<Vec<u32>>,
    budget: usize,
    edges: usize,
}

impl GraphOverlay {
    /// An empty overlay over `n` vertices with `budget` extra edges
    /// allowed per vertex.
    pub fn new(n: usize, budget: usize) -> Self {
        GraphOverlay {
            lists: vec![Vec::new(); n],
            budget,
            edges: 0,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when the overlay covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The per-vertex extra-degree budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Shortcut edges inserted so far.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Extra out-degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.lists[v as usize].len()
    }

    /// Inserts the shortcut `src -> dst`, enforcing range, no self-loop,
    /// no duplicate, and the per-vertex budget — each violation is a
    /// distinct [`OverlayError`].
    pub fn try_add(&mut self, src: u32, dst: u32) -> Result<(), OverlayError> {
        let n = self.lists.len();
        for v in [src, dst] {
            if v as usize >= n {
                return Err(OverlayError::OutOfRange { vertex: v, n });
            }
        }
        if src == dst {
            return Err(OverlayError::SelfLoop { vertex: src });
        }
        let list = &mut self.lists[src as usize];
        if list.contains(&dst) {
            return Err(OverlayError::Duplicate { src, dst });
        }
        if list.len() >= self.budget {
            return Err(OverlayError::DegreeBudget {
                vertex: src,
                budget: self.budget,
            });
        }
        list.push(dst);
        self.edges += 1;
        Ok(())
    }

    /// Freezes the overlay into its own CSR segment (same vertex count as
    /// the base graph, only the shortcut edges).
    pub fn freeze(&self) -> CsrGraph {
        CsrGraph::from_lists(&self.lists)
    }
}

/// Materializes the combined routing graph: for every vertex, base edges
/// in base order followed by overlay edges in overlay order. Routers then
/// traverse base+overlay through the ordinary adjacency interface.
///
/// # Panics
/// Panics when the two segments disagree on the vertex count.
pub fn merge_overlay(base: &CsrGraph, overlay: &CsrGraph) -> CsrGraph {
    assert_eq!(
        base.len(),
        overlay.len(),
        "base and overlay must cover the same vertices"
    );
    let lists: Vec<Vec<u32>> = (0..base.len() as u32)
        .map(|v| {
            let b = base.neighbors(v);
            let o = overlay.neighbors(v);
            let mut l = Vec::with_capacity(b.len() + o.len());
            l.extend_from_slice(b);
            l.extend_from_slice(o);
            l
        })
        .collect();
    CsrGraph::from_lists(&lists)
}

/// Recovers the base segment from a [`merge_overlay`] product: overlay
/// edges are the per-vertex suffix, so stripping `overlay.degree(v)`
/// trailing edges from each combined list is an exact inverse.
///
/// # Panics
/// Panics when the segments disagree on vertex count or a combined list
/// is shorter than its overlay list (i.e. `combined` was not produced by
/// merging this overlay).
pub fn strip_overlay(combined: &CsrGraph, overlay: &CsrGraph) -> CsrGraph {
    assert_eq!(combined.len(), overlay.len());
    let lists: Vec<&[u32]> = (0..combined.len() as u32)
        .map(|v| {
            let c = combined.neighbors(v);
            let extra = overlay.degree(v);
            assert!(
                c.len() >= extra,
                "combined degree {} < overlay degree {extra} at vertex {v}",
                c.len()
            );
            &c[..c.len() - extra]
        })
        .collect();
    CsrGraph::from_lists(&lists)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_and_validity_violations_are_typed() {
        let mut o = GraphOverlay::new(4, 2);
        o.try_add(0, 1).unwrap();
        o.try_add(0, 2).unwrap();
        assert_eq!(
            o.try_add(0, 3),
            Err(OverlayError::DegreeBudget {
                vertex: 0,
                budget: 2
            })
        );
        assert_eq!(o.try_add(1, 1), Err(OverlayError::SelfLoop { vertex: 1 }));
        assert_eq!(
            o.try_add(1, 9),
            Err(OverlayError::OutOfRange { vertex: 9, n: 4 })
        );
        o.try_add(1, 2).unwrap();
        assert_eq!(
            o.try_add(1, 2),
            Err(OverlayError::Duplicate { src: 1, dst: 2 })
        );
        assert_eq!(o.num_edges(), 3);
        assert_eq!(o.degree(0), 2);
    }

    #[test]
    fn merge_appends_and_strip_inverts() {
        let base = CsrGraph::from_lists(&[vec![1, 2], vec![0], vec![]]);
        let mut o = GraphOverlay::new(3, 2);
        o.try_add(0, 2).unwrap(); // duplicate of a *base* edge is allowed at
        o.try_add(2, 0).unwrap(); // this layer; the miner filters those.
        let overlay = o.freeze();
        let combined = merge_overlay(&base, &overlay);
        assert_eq!(combined.neighbors(0), &[1, 2, 2]);
        assert_eq!(combined.neighbors(1), &[0]);
        assert_eq!(combined.neighbors(2), &[0]);
        assert_eq!(combined.num_edges(), base.num_edges() + overlay.num_edges());
        let back = strip_overlay(&combined, &overlay);
        assert_eq!(back, base);
    }
}
