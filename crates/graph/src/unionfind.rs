//! Disjoint-set forest with union by rank and path halving.

/// Union-find over `0..n`, used for weakly-connected components (Table 4's
/// CC column) and Kruskal's MST.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (path halving keeps trees shallow).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` when they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// True when `a` and `b` share a set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already merged
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn find_is_idempotent_after_unions() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..8 {
            assert_eq!(uf.find(i), root);
        }
        assert_eq!(uf.components(), 1);
    }
}
