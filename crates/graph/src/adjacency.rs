//! Build-time and search-time graph representations.
//!
//! Construction mutates neighbor lists from many threads (NN-Descent,
//! refinement passes), so [`BuildGraph`] wraps each vertex's list in a
//! `parking_lot::RwLock`. Search never mutates, so indexes are *frozen*
//! into a [`CsrGraph`]: one offsets array plus one flat edge array —
//! contiguous neighbors, one indirection, no per-vertex allocation.

use parking_lot::RwLock;
use weavess_data::neighbor::insert_into_pool;
use weavess_data::Neighbor;

/// Read access to a graph's out-neighbors — the only view search needs.
///
/// Implemented by the frozen [`CsrGraph`] and by plain `Vec<Vec<u32>>`
/// adjacency lists, so incremental builders (NSW, HNSW, NGT) can run the
/// same routing code on their still-growing graphs.
pub trait GraphView {
    /// Out-neighbors of vertex `v`.
    fn neighbors(&self, v: u32) -> &[u32];
    /// Number of vertices.
    fn len(&self) -> usize;
    /// True when the graph has no vertices.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Hints the cache that vertex `v`'s neighbor data is about to be
    /// read. Default: no-op. Contiguous layouts prefetch the head of the
    /// adjacency (or fused node) block; the routers issue this for the
    /// *next* expansion candidate while scoring the current one.
    #[inline]
    fn prefetch_neighbors(&self, _v: u32) {}
}

impl GraphView for Vec<Vec<u32>> {
    #[inline]
    fn neighbors(&self, v: u32) -> &[u32] {
        &self[v as usize]
    }
    fn len(&self) -> usize {
        Vec::len(self)
    }
}

impl GraphView for [Vec<u32>] {
    #[inline]
    fn neighbors(&self, v: u32) -> &[u32] {
        &self[v as usize]
    }
    fn len(&self) -> usize {
        <[Vec<u32>]>::len(self)
    }
}

/// Concurrent adjacency list used during index construction.
///
/// Each vertex holds a nearest-first sorted pool of [`Neighbor`]s. Locks are
/// per-vertex, so refinement passes over disjoint vertices proceed in
/// parallel without contention.
pub struct BuildGraph {
    nodes: Vec<RwLock<Vec<Neighbor>>>,
}

impl BuildGraph {
    /// An edgeless graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        BuildGraph {
            nodes: (0..n).map(|_| RwLock::new(Vec::new())).collect(),
        }
    }

    /// Builds directly from per-vertex neighbor lists.
    pub fn from_lists(lists: Vec<Vec<Neighbor>>) -> Self {
        BuildGraph {
            nodes: lists.into_iter().map(RwLock::new).collect(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clones vertex `v`'s neighbor pool (read lock held only for the copy).
    pub fn neighbors(&self, v: u32) -> Vec<Neighbor> {
        self.nodes[v as usize].read().clone()
    }

    /// Runs `f` with a read borrow of vertex `v`'s pool, avoiding the clone.
    pub fn with_neighbors<R>(&self, v: u32, f: impl FnOnce(&[Neighbor]) -> R) -> R {
        f(&self.nodes[v as usize].read())
    }

    /// Replaces vertex `v`'s pool (kept sorted by the caller's contract).
    pub fn set_neighbors(&self, v: u32, mut pool: Vec<Neighbor>) {
        pool.sort_unstable();
        *self.nodes[v as usize].write() = pool;
    }

    /// Inserts `n` into vertex `v`'s bounded pool; returns the insert
    /// position (see [`insert_into_pool`]).
    pub fn insert(&self, v: u32, capacity: usize, n: Neighbor) -> Option<usize> {
        insert_into_pool(&mut self.nodes[v as usize].write(), capacity, n)
    }

    /// Current out-degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.nodes[v as usize].read().len()
    }

    /// Consumes the graph into plain per-vertex lists.
    pub fn into_lists(self) -> Vec<Vec<Neighbor>> {
        self.nodes.into_iter().map(|l| l.into_inner()).collect()
    }

    /// Copies out plain per-vertex lists without consuming.
    pub fn to_lists(&self) -> Vec<Vec<Neighbor>> {
        self.nodes.iter().map(|l| l.read().clone()).collect()
    }

    /// Freezes into a CSR search graph, keeping at most `max_degree`
    /// nearest neighbors per vertex (`usize::MAX` keeps all).
    ///
    /// Writes the CSR arrays directly — no intermediate `Vec<Vec<u32>>` —
    /// and sizes the edge array from the *clamped* degrees, so a graph
    /// whose pools exceed `max_degree` doesn't briefly allocate for the
    /// untruncated edge count.
    pub fn freeze(&self, max_degree: usize) -> CsrGraph {
        let total: usize = self
            .nodes
            .iter()
            .map(|l| l.read().len().min(max_degree))
            .sum();
        let mut offsets = Vec::with_capacity(self.nodes.len() + 1);
        let mut edges = Vec::with_capacity(total);
        offsets.push(0u64);
        for l in &self.nodes {
            let pool = l.read();
            edges.extend(pool.iter().take(max_degree).map(|n| n.id));
            offsets.push(edges.len() as u64);
        }
        debug_assert_eq!(edges.len(), total);
        CsrGraph { offsets, edges }
    }
}

/// Immutable compressed-sparse-row graph used for search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    edges: Vec<u32>,
}

impl GraphView for CsrGraph {
    #[inline]
    fn neighbors(&self, v: u32) -> &[u32] {
        CsrGraph::neighbors(self, v)
    }
    fn len(&self) -> usize {
        CsrGraph::len(self)
    }
    #[inline]
    fn prefetch_neighbors(&self, v: u32) {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        weavess_data::prefetch::prefetch_span(self.edges[s..e].as_ptr(), e - s);
    }
}

impl CsrGraph {
    /// Builds from per-vertex id lists.
    pub fn from_lists<L: AsRef<[u32]>>(lists: &[L]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let total: usize = lists.iter().map(|l| l.as_ref().len()).sum();
        let mut edges = Vec::with_capacity(total);
        offsets.push(0u64);
        for l in lists {
            edges.extend_from_slice(l.as_ref());
            offsets.push(edges.len() as u64);
        }
        CsrGraph { offsets, edges }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-neighbors of vertex `v` as a contiguous slice.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        &self.edges[s..e]
    }

    /// Out-degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Reconstructs plain per-vertex lists (tests, round-trips).
    pub fn to_lists(&self) -> Vec<Vec<u32>> {
        (0..self.len() as u32)
            .map(|v| self.neighbors(v).to_vec())
            .collect()
    }

    /// Heap footprint in bytes — the Figure 6 "index size" contribution of
    /// the adjacency structure.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.edges.len() * std::mem::size_of::<u32>()
    }

    /// Out-degree histogram: `hist[d]` counts vertices with out-degree
    /// `d` (length `max_degree + 1`). The Table 5 out-degree column reads
    /// straight off this; `metrics::degree_stats` gives the summary form.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max_d = (0..self.len() as u32).map(|v| self.degree(v)).max();
        let mut hist = vec![0usize; max_d.map_or(0, |m| m + 1)];
        for v in 0..self.len() as u32 {
            hist[self.degree(v)] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_graph_insert_respects_capacity_and_order() {
        let g = BuildGraph::new(3);
        g.insert(0, 2, Neighbor::new(1, 5.0));
        g.insert(0, 2, Neighbor::new(2, 1.0));
        g.insert(0, 2, Neighbor::new(1, 5.0)); // duplicate, rejected
        let n = g.neighbors(0);
        assert_eq!(n, vec![Neighbor::new(2, 1.0), Neighbor::new(1, 5.0)]);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn set_neighbors_sorts() {
        let g = BuildGraph::new(1);
        g.set_neighbors(0, vec![Neighbor::new(5, 3.0), Neighbor::new(9, 1.0)]);
        assert_eq!(g.neighbors(0)[0].id, 9);
    }

    #[test]
    fn freeze_truncates_to_max_degree() {
        let g = BuildGraph::new(2);
        for (id, d) in [(1u32, 1.0f32), (2, 2.0), (3, 3.0)] {
            g.insert(0, 8, Neighbor::new(id, d));
        }
        let csr = g.freeze(2);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
    }

    #[test]
    fn csr_roundtrip() {
        let lists = vec![vec![1u32, 2], vec![], vec![0]];
        let csr = CsrGraph::from_lists(&lists);
        assert_eq!(csr.len(), 3);
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.to_lists(), lists);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 0);
    }

    #[test]
    fn freeze_allocates_exactly_the_clamped_edge_count() {
        let g = BuildGraph::new(3);
        for v in 0..3u32 {
            for (id, d) in [(10u32, 1.0f32), (11, 2.0), (12, 3.0), (13, 4.0)] {
                g.insert(v, 8, Neighbor::new(id, d));
            }
        }
        let csr = g.freeze(2);
        assert_eq!(csr.num_edges(), 6);
        // Edge storage was sized from the clamped degrees, not the pools.
        assert_eq!(csr.edges.capacity(), 6);
        assert_eq!(csr.to_lists(), vec![vec![10, 11]; 3]);
    }

    #[test]
    fn degree_histogram_counts_every_vertex() {
        let csr = CsrGraph::from_lists(&[vec![1u32, 2, 3], vec![], vec![0u32], vec![0u32]]);
        assert_eq!(csr.degree_histogram(), vec![1, 2, 0, 1]);
        assert_eq!(
            CsrGraph::from_lists::<Vec<u32>>(&[]).degree_histogram(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn csr_memory_accounts_offsets_and_edges() {
        let csr = CsrGraph::from_lists(&[vec![1u32], vec![0u32]]);
        assert_eq!(csr.memory_bytes(), 3 * 8 + 2 * 4);
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let g = BuildGraph::new(1);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let g = &g;
                s.spawn(move || {
                    for i in 0..50u32 {
                        g.insert(0, 16, Neighbor::new(t * 100 + i, (t * 100 + i) as f32));
                    }
                });
            }
        });
        let n = g.neighbors(0);
        assert_eq!(n.len(), 16);
        // Pool holds the 16 globally smallest distances: ids 0..16 from t=0.
        assert!(n.iter().all(|x| x.id < 16));
    }
}
