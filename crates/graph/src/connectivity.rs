//! Connectivity analysis: weakly-connected components and reachability.
//!
//! The survey reports the number of connected components per index
//! (Table 4) and uses DFS-based connectivity repair as the C5 pipeline
//! component (NSG, NSSG, OA). Directed edges are treated as undirected for
//! component counting, matching the paper's "weakly connected" convention.

use crate::adjacency::CsrGraph;
use crate::unionfind::UnionFind;

/// Number of weakly-connected components.
pub fn weak_components(g: &CsrGraph) -> usize {
    let mut uf = UnionFind::new(g.len());
    for v in 0..g.len() as u32 {
        for &u in g.neighbors(v) {
            uf.union(v, u);
        }
    }
    uf.components()
}

/// Ids of one representative per weakly-connected component, smallest id
/// first (used by C5 repair to find unreached islands).
pub fn component_representatives(g: &CsrGraph) -> Vec<u32> {
    let mut uf = UnionFind::new(g.len());
    for v in 0..g.len() as u32 {
        for &u in g.neighbors(v) {
            uf.union(v, u);
        }
    }
    let mut seen = vec![false; g.len()];
    let mut reps = Vec::new();
    for v in 0..g.len() as u32 {
        let r = uf.find(v) as usize;
        if !seen[r] {
            seen[r] = true;
            reps.push(v);
        }
    }
    reps
}

/// Vertices reachable from `start` following *directed* edges (iterative
/// DFS). The C5 component checks directed reachability from the entry
/// point because search itself follows directed edges.
pub fn reachable_from(g: &CsrGraph, start: u32) -> Vec<bool> {
    let mut visited = vec![false; g.len()];
    let mut stack = vec![start];
    visited[start as usize] = true;
    while let Some(v) = stack.pop() {
        for &u in g.neighbors(v) {
            if !visited[u as usize] {
                visited[u as usize] = true;
                stack.push(u);
            }
        }
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_islands() -> CsrGraph {
        // 0 -> 1 -> 2 (island A), 3 <-> 4 (island B)
        CsrGraph::from_lists(&[vec![1u32], vec![2], vec![], vec![4], vec![3]])
    }

    #[test]
    fn counts_weak_components() {
        assert_eq!(weak_components(&two_islands()), 2);
    }

    #[test]
    fn representatives_one_per_component() {
        let reps = component_representatives(&two_islands());
        assert_eq!(reps, vec![0, 3]);
    }

    #[test]
    fn directed_reachability() {
        let g = two_islands();
        let r = reachable_from(&g, 0);
        assert_eq!(r, vec![true, true, true, false, false]);
        // 2 has no out-edges: only itself.
        let r2 = reachable_from(&g, 2);
        assert_eq!(r2.iter().filter(|&&x| x).count(), 1);
    }

    #[test]
    fn fully_connected_graph_is_one_component() {
        let g = CsrGraph::from_lists(&[vec![1u32], vec![2], vec![0]]);
        assert_eq!(weak_components(&g), 1);
        assert!(reachable_from(&g, 0).iter().all(|&x| x));
    }
}
