//! [`FusedArena`]: one contiguous, cache-aligned block per vertex holding
//! its degree, neighbor ids, and (optionally) its vector.
//!
//! The split layout pays two dependent misses per expansion: one into the
//! CSR edge array, then one per neighbor into the vector matrix. kANNolo
//! (arXiv 2501.06121) shows that fusing a node's adjacency and vector
//! into a single block — so expanding a vertex touches exactly one region
//! the prefetcher can stream — is worth more than micro-optimized
//! arithmetic. This arena is that layout: blocks are 64-byte aligned and
//! stride-padded to whole cache lines, and expose the same [`GraphView`]
//! / [`VectorView`] traits the routers already consume, so every search
//! routine runs on it unchanged.
//!
//! Distances computed through the arena reuse the *same* kernels as the
//! split layout ([`weavess_data::distance`] for f32 payloads,
//! [`weavess_data::quant::sq8_distance`] for SQ8), so fused results are
//! bit-identical by construction.

use crate::adjacency::{CsrGraph, GraphView};
use weavess_data::prefetch::{prefetch_enabled, prefetch_span};
use weavess_data::quant::{sq8_distance, sq8_distance_prepped, with_sq8_residual, Sq8Dataset};
use weavess_data::vectors::VectorView;
use weavess_data::Dataset;

/// Words (u32) per 64-byte cache line.
const LINE_WORDS: usize = 16;

/// What each node block carries after its adjacency list.
#[derive(Debug, Clone, PartialEq)]
enum Payload {
    /// Adjacency only — the vectors live elsewhere.
    None,
    /// The vertex's raw `f32` vector, `dim` words.
    F32 { dim: usize },
    /// The vertex's SQ8 codes (`dim` bytes, word-padded) with the shared
    /// dequantization parameters held once arena-wide.
    Sq8 {
        dim: usize,
        min: Vec<f32>,
        step: Vec<f32>,
    },
}

impl Payload {
    /// Words the payload occupies inside each block.
    fn words(&self) -> usize {
        match self {
            Payload::None => 0,
            Payload::F32 { dim } => *dim,
            Payload::Sq8 { dim, .. } => dim.div_ceil(4),
        }
    }
}

/// Fused node storage: `block(v) = [degree, neighbor ids…, payload…]`,
/// one 64-byte-aligned, line-padded block per vertex.
///
/// Not `Clone`: the base offset depends on the allocation's address, so a
/// byte-copy would mis-align. Rebuild from the source graph instead.
#[derive(Debug)]
pub struct FusedArena {
    buf: Vec<u32>,
    /// Word offset of the first block (aligns block 0 to 64 bytes).
    base: usize,
    /// Words per block — a multiple of [`LINE_WORDS`].
    stride: usize,
    n: usize,
    max_degree: usize,
    payload: Payload,
}

impl FusedArena {
    /// Fuses adjacency only (vectors stay wherever the caller keeps them).
    pub fn from_graph(g: &CsrGraph) -> Self {
        Self::build(g, Payload::None, |_, _| {})
    }

    /// Fuses adjacency and raw `f32` vectors.
    pub fn with_vectors(g: &CsrGraph, ds: &Dataset) -> Self {
        assert_eq!(g.len(), ds.len(), "graph/dataset size mismatch");
        Self::build(g, Payload::F32 { dim: ds.dim() }, |v, dst| {
            let src = ds.point(v);
            // SAFETY: dst is a fresh &mut [u32] of exactly `dim` words;
            // u32 and f32 have identical size and 4-byte alignment.
            let out =
                unsafe { std::slice::from_raw_parts_mut(dst.as_mut_ptr() as *mut f32, src.len()) };
            out.copy_from_slice(src);
        })
    }

    /// Fuses adjacency and SQ8 codes; dequantization parameters are kept
    /// once for the whole arena.
    pub fn with_sq8(g: &CsrGraph, sq: &Sq8Dataset) -> Self {
        assert_eq!(g.len(), sq.len(), "graph/codes size mismatch");
        let payload = Payload::Sq8 {
            dim: sq.dim(),
            min: sq.mins().to_vec(),
            step: sq.steps().to_vec(),
        };
        Self::build(g, payload, |v, dst| {
            let src = sq.codes_of(v);
            // SAFETY: dst spans ceil(dim/4) zero-initialized words — at
            // least `dim` bytes; byte views of u32 storage are always
            // valid and never reinterpret multi-byte values.
            let out =
                unsafe { std::slice::from_raw_parts_mut(dst.as_mut_ptr() as *mut u8, src.len()) };
            out.copy_from_slice(src);
        })
    }

    fn build(
        g: &CsrGraph,
        payload: Payload,
        mut write_payload: impl FnMut(u32, &mut [u32]),
    ) -> Self {
        let n = g.len();
        let max_degree = (0..n as u32).map(|v| g.degree(v)).max().unwrap_or(0);
        let used_words = 1 + max_degree + payload.words();
        let stride = used_words.div_ceil(LINE_WORDS) * LINE_WORDS;
        // Over-allocate by a line so block 0 can start on a 64-byte
        // boundary regardless of where the allocator put us.
        let mut buf = vec![0u32; n * stride + (LINE_WORDS - 1)];
        // align_offset counts *elements* (u32s) to advance for 64-byte
        // alignment: at most 15.
        let base = buf.as_ptr().align_offset(64);
        debug_assert!(base < LINE_WORDS);
        let payload_off = 1 + max_degree;
        let payload_words = payload.words();
        for v in 0..n as u32 {
            let block = &mut buf[base + v as usize * stride..base + (v as usize + 1) * stride];
            let nbrs = g.neighbors(v);
            block[0] = nbrs.len() as u32;
            block[1..1 + nbrs.len()].copy_from_slice(nbrs);
            write_payload(v, &mut block[payload_off..payload_off + payload_words]);
        }
        FusedArena {
            buf,
            base,
            stride,
            n,
            max_degree,
            payload,
        }
    }

    #[inline]
    fn block(&self, v: u32) -> &[u32] {
        debug_assert!((v as usize) < self.n);
        &self.buf[self.base + v as usize * self.stride..self.base + (v as usize + 1) * self.stride]
    }

    /// Largest out-degree the blocks were sized for.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Words per node block (a multiple of 16, i.e. whole cache lines).
    pub fn stride_words(&self) -> usize {
        self.stride
    }

    /// SQ8 codes of vertex `v` (only for SQ8-payload arenas).
    fn sq8_codes(&self, v: u32) -> &[u8] {
        let Payload::Sq8 { dim, .. } = &self.payload else {
            panic!("arena has no SQ8 payload");
        };
        let words = &self.block(v)[1 + self.max_degree..];
        // SAFETY: the payload region holds at least `dim` bytes; byte
        // views of u32 storage are always valid.
        unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *dim) }
    }

    /// Heap bytes held by the arena (blocks + dequantization parameters).
    pub fn memory_bytes(&self) -> usize {
        let params = match &self.payload {
            Payload::Sq8 { min, step, .. } => (min.len() + step.len()) * 4,
            _ => 0,
        };
        self.buf.len() * std::mem::size_of::<u32>() + params
    }

    /// Bytes of the arena that are padding rather than data: unused
    /// neighbor slots (blocks are sized for the max degree), SQ8 byte
    /// padding, and cache-line rounding. The honest cost of fusing.
    pub fn padding_bytes(&self) -> usize {
        let payload_bytes = match &self.payload {
            Payload::None => 0,
            Payload::F32 { dim } => dim * 4,
            Payload::Sq8 { dim, .. } => *dim,
        };
        let useful: usize = (0..self.n as u32)
            .map(|v| 4 * (1 + self.block(v)[0] as usize) + payload_bytes)
            .sum();
        self.buf.len() * std::mem::size_of::<u32>() - useful
    }
}

impl GraphView for FusedArena {
    #[inline]
    fn neighbors(&self, v: u32) -> &[u32] {
        let block = self.block(v);
        &block[1..1 + block[0] as usize]
    }

    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn prefetch_neighbors(&self, v: u32) {
        // One hint covers degree, ids, and the head of the vector — the
        // whole point of fusing.
        let block = self.block(v);
        prefetch_span(block.as_ptr(), block.len().min(2 * LINE_WORDS));
    }
}

impl VectorView for FusedArena {
    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        match &self.payload {
            Payload::None => 0,
            Payload::F32 { dim } | Payload::Sq8 { dim, .. } => *dim,
        }
    }

    #[inline]
    fn vector(&self, v: u32) -> &[f32] {
        let Payload::F32 { dim } = &self.payload else {
            panic!("arena payload holds no raw f32 vectors");
        };
        let words = &self.block(v)[1 + self.max_degree..1 + self.max_degree + dim];
        // SAFETY: the payload words were written from an &[f32] of this
        // exact length; u32 and f32 share size and alignment.
        unsafe { std::slice::from_raw_parts(words.as_ptr() as *const f32, *dim) }
    }

    #[inline]
    fn dist_to(&self, query: &[f32], v: u32) -> f32 {
        match &self.payload {
            Payload::F32 { .. } => weavess_data::distance::squared_euclidean(query, self.vector(v)),
            Payload::Sq8 { min, step, .. } => sq8_distance(query, self.sq8_codes(v), min, step),
            Payload::None => {
                panic!("arena payload holds no vectors; search over the split dataset")
            }
        }
    }

    #[inline]
    fn prefetch_vector(&self, v: u32) {
        let block = self.block(v);
        // The vector sits past the adjacency inside the same block;
        // request the lines that hold it.
        let off = (1 + self.max_degree).min(block.len());
        prefetch_span(block[off..].as_ptr(), block.len() - off);
    }

    /// Batch scoring over fused blocks. For the SQ8 payload the per-query
    /// dequantization residual is hoisted out of the candidate loop
    /// (computed once per batch) and codes are scored by the same
    /// residual-form kernel as the split [`Sq8Dataset`] — bit-equal to
    /// per-id [`VectorView::dist_to`] on the same tier, and bit-identical
    /// to split routing by construction. Other payloads keep the default
    /// per-id path with prefetch look-ahead.
    fn dist_to_many(&self, query: &[f32], ids: &[u32], out: &mut Vec<f32>) {
        const AHEAD: usize = 2;
        let Payload::Sq8 { min, step, .. } = &self.payload else {
            out.clear();
            out.reserve(ids.len());
            if prefetch_enabled() {
                for (j, &id) in ids.iter().enumerate() {
                    if let Some(&ahead) = ids.get(j + AHEAD) {
                        self.prefetch_vector(ahead);
                    }
                    out.push(self.dist_to(query, id));
                }
            } else {
                for &id in ids {
                    out.push(self.dist_to(query, id));
                }
            }
            return;
        };
        out.clear();
        out.reserve(ids.len());
        let prefetch = prefetch_enabled();
        with_sq8_residual(query, min, |residual| {
            for (j, &id) in ids.iter().enumerate() {
                if prefetch {
                    if let Some(&ahead) = ids.get(j + AHEAD) {
                        self.prefetch_vector(ahead);
                    }
                }
                out.push(sq8_distance_prepped(residual, step, self.sq8_codes(id)));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> CsrGraph {
        CsrGraph::from_lists(&[vec![1u32, 2, 3], vec![0u32], vec![], vec![2u32, 0]])
    }

    fn dataset(dim: usize) -> Dataset {
        let mut ds = Dataset::empty(dim);
        for i in 0..4 {
            let row: Vec<f32> = (0..dim)
                .map(|d| (i * dim + d) as f32 * 0.25 - 3.0)
                .collect();
            ds.push(&row);
        }
        ds
    }

    #[test]
    fn blocks_are_64_byte_aligned_and_line_strided() {
        let arena = FusedArena::with_vectors(&graph(), &dataset(17));
        assert_eq!(arena.stride_words() % LINE_WORDS, 0);
        for v in 0..4u32 {
            assert_eq!(arena.block(v).as_ptr() as usize % 64, 0, "vertex {v}");
        }
    }

    #[test]
    fn neighbors_match_the_source_graph() {
        let g = graph();
        let arena = FusedArena::from_graph(&g);
        for v in 0..g.len() as u32 {
            assert_eq!(GraphView::neighbors(&arena, v), g.neighbors(v));
        }
        assert_eq!(GraphView::len(&arena), g.len());
    }

    #[test]
    fn f32_payload_roundtrips_and_distances_match_bitwise() {
        let g = graph();
        let ds = dataset(23); // odd dim exercises line padding
        let arena = FusedArena::with_vectors(&g, &ds);
        let query: Vec<f32> = (0..23).map(|d| d as f32 * 0.5).collect();
        for v in 0..4u32 {
            assert_eq!(VectorView::vector(&arena, v), ds.point(v));
            assert_eq!(
                VectorView::dist_to(&arena, &query, v).to_bits(),
                ds.dist_to(&query, v).to_bits()
            );
        }
    }

    #[test]
    fn sq8_payload_distances_match_the_split_codes_bitwise() {
        let g = graph();
        let ds = dataset(13); // non-multiple-of-4 dim exercises byte padding
        let sq = Sq8Dataset::quantize(&ds);
        let arena = FusedArena::with_sq8(&g, &sq);
        let query: Vec<f32> = (0..13).map(|d| 1.0 - d as f32 * 0.3).collect();
        for v in 0..4u32 {
            assert_eq!(
                VectorView::dist_to(&arena, &query, v).to_bits(),
                sq.dist_to(&query, v).to_bits()
            );
        }
    }

    #[test]
    fn padding_is_accounted_honestly() {
        let g = graph();
        let arena = FusedArena::from_graph(&g);
        // useful = Σ 4·(1+deg) = 4·(4+2+1+3) = 40 bytes; everything else
        // in the buffer is padding.
        assert_eq!(arena.padding_bytes(), arena.memory_bytes() - 40);
    }

    #[test]
    #[should_panic(expected = "no raw f32 vectors")]
    fn vector_access_on_graph_only_arena_panics() {
        let arena = FusedArena::from_graph(&graph());
        let _ = VectorView::vector(&arena, 0);
    }
}
