//! Exact base graphs from §3.1 of the survey: KNNG, RNG, MST, and (in two
//! dimensions) the Delaunay Graph.
//!
//! High-dimensional exact DG is impractical — the paper notes it is
//! "almost fully connected", and every DG-based algorithm (NSW, NGT)
//! *approximates* it by incremental insertion (in `weavess-core`). The 2-D
//! exact construction ([`delaunay_2d`]) exists for base-graph analysis:
//! it anchors the classic proximity-graph inclusion chain
//! `MST ⊆ RNG ⊆ DG` that Figure 2 illustrates.

use crate::adjacency::CsrGraph;
use crate::unionfind::UnionFind;
use weavess_data::ground_truth::exact_knn_graph;
use weavess_data::Dataset;

/// Exact directed K-nearest-neighbor graph (brute force, parallel).
pub fn exact_knng(ds: &Dataset, k: usize, threads: usize) -> CsrGraph {
    CsrGraph::from_lists(&exact_knn_graph(ds, k, threads))
}

/// Exact Relative Neighborhood Graph by the definition in §3.1: points
/// `x, y` are connected iff no third point `z` lies strictly inside the lune
/// (`δ(x,z) < δ(x,y)` and `δ(z,y) < δ(x,y)`).
///
/// O(n³); intended for small baselines and for property-testing the RNG
/// approximations used by HNSW/NSG/FANNG/DPG.
pub fn exact_rng(ds: &Dataset) -> CsrGraph {
    let n = ds.len() as u32;
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    for x in 0..n {
        for y in (x + 1)..n {
            let dxy = ds.dist(x, y);
            let occluded =
                (0..n).any(|z| z != x && z != y && ds.dist(x, z) < dxy && ds.dist(z, y) < dxy);
            if !occluded {
                lists[x as usize].push(y);
                lists[y as usize].push(x);
            }
        }
    }
    CsrGraph::from_lists(&lists)
}

/// An undirected weighted edge (`a < b` by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEdge {
    /// Smaller endpoint.
    pub a: u32,
    /// Larger endpoint.
    pub b: u32,
    /// Squared Euclidean length.
    pub w: f32,
}

/// Minimum spanning tree over the points listed in `ids` (global dataset
/// ids), by Prim's algorithm in O(m²) for m points — the HCNNG leaf-cluster
/// routine, where m is the small cluster size.
///
/// Returns the m-1 tree edges (empty for m < 2).
pub fn mst_prim(ds: &Dataset, ids: &[u32]) -> Vec<WeightedEdge> {
    let m = ids.len();
    if m < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; m];
    // best[i] = (cost to connect ids[i] to the tree, tree vertex achieving it)
    let mut best = vec![(f32::INFINITY, 0usize); m];
    let mut edges = Vec::with_capacity(m - 1);
    in_tree[0] = true;
    for i in 1..m {
        best[i] = (ds.dist(ids[0], ids[i]), 0);
    }
    for _ in 1..m {
        // Cheapest crossing edge.
        let mut pick = usize::MAX;
        let mut pick_w = f32::INFINITY;
        for i in 0..m {
            if !in_tree[i] && best[i].0 < pick_w {
                pick_w = best[i].0;
                pick = i;
            }
        }
        debug_assert!(pick != usize::MAX);
        in_tree[pick] = true;
        let (pa, pb) = (ids[best[pick].1], ids[pick]);
        edges.push(WeightedEdge {
            a: pa.min(pb),
            b: pa.max(pb),
            w: pick_w,
        });
        for i in 0..m {
            if !in_tree[i] {
                let d = ds.dist(ids[pick], ids[i]);
                if d < best[i].0 {
                    best[i] = (d, pick);
                }
            }
        }
    }
    edges
}

/// Minimum spanning tree by Kruskal (sort + union-find). Used as an
/// independent oracle for property-testing Prim.
pub fn mst_kruskal(ds: &Dataset, ids: &[u32]) -> Vec<WeightedEdge> {
    let m = ids.len();
    if m < 2 {
        return Vec::new();
    }
    let mut all = Vec::with_capacity(m * (m - 1) / 2);
    for i in 0..m {
        for j in (i + 1)..m {
            all.push(WeightedEdge {
                a: ids[i].min(ids[j]),
                b: ids[i].max(ids[j]),
                w: ds.dist(ids[i], ids[j]),
            });
        }
    }
    all.sort_by(|x, y| x.w.total_cmp(&y.w).then(x.a.cmp(&y.a)).then(x.b.cmp(&y.b)));
    // Union-find over local indices.
    let local: std::collections::HashMap<u32, u32> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i as u32))
        .collect();
    let mut uf = UnionFind::new(m);
    let mut edges = Vec::with_capacity(m - 1);
    for e in all {
        if uf.union(local[&e.a], local[&e.b]) {
            edges.push(e);
            if edges.len() == m - 1 {
                break;
            }
        }
    }
    edges
}

/// Total weight of an edge set.
pub fn total_weight(edges: &[WeightedEdge]) -> f64 {
    edges.iter().map(|e| e.w as f64).sum()
}

/// Exact Delaunay graph of a **2-D** dataset by Bowyer–Watson incremental
/// triangulation. Returns the undirected edge adjacency (the DG of
/// Figure 2(a)).
///
/// # Panics
/// Panics when `ds.dim() != 2` or `ds.len() < 3`.
pub fn delaunay_2d(ds: &Dataset) -> CsrGraph {
    assert_eq!(ds.dim(), 2, "delaunay_2d requires 2-D data");
    let n = ds.len();
    assert!(n >= 3, "need at least three points");
    // Vertex coordinates, with three super-triangle vertices appended.
    let mut xs: Vec<f64> = Vec::with_capacity(n + 3);
    let mut ys: Vec<f64> = Vec::with_capacity(n + 3);
    let (mut lo_x, mut hi_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut lo_y, mut hi_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for i in 0..n as u32 {
        let p = ds.point(i);
        xs.push(p[0] as f64);
        ys.push(p[1] as f64);
        lo_x = lo_x.min(p[0] as f64);
        hi_x = hi_x.max(p[0] as f64);
        lo_y = lo_y.min(p[1] as f64);
        hi_y = hi_y.max(p[1] as f64);
    }
    let span = (hi_x - lo_x).max(hi_y - lo_y).max(1.0);
    let (cx, cy) = ((lo_x + hi_x) / 2.0, (lo_y + hi_y) / 2.0);
    xs.extend([cx - 20.0 * span, cx, cx + 20.0 * span]);
    ys.extend([cy - span, cy + 20.0 * span, cy - span]);
    let (s0, s1, s2) = (n, n + 1, n + 2);

    // Triangles as vertex-index triples.
    let mut tris: Vec<[usize; 3]> = vec![[s0, s1, s2]];
    let in_circumcircle = |t: &[usize; 3], p: usize| -> bool {
        // Sign of the standard in-circle determinant, orientation-adjusted.
        let (ax, ay) = (xs[t[0]] - xs[p], ys[t[0]] - ys[p]);
        let (bx, by) = (xs[t[1]] - xs[p], ys[t[1]] - ys[p]);
        let (cx2, cy2) = (xs[t[2]] - xs[p], ys[t[2]] - ys[p]);
        let det = (ax * ax + ay * ay) * (bx * cy2 - cx2 * by)
            - (bx * bx + by * by) * (ax * cy2 - cx2 * ay)
            + (cx2 * cx2 + cy2 * cy2) * (ax * by - bx * ay);
        // Orientation of the triangle itself.
        let orient = (xs[t[1]] - xs[t[0]]) * (ys[t[2]] - ys[t[0]])
            - (xs[t[2]] - xs[t[0]]) * (ys[t[1]] - ys[t[0]]);
        if orient > 0.0 {
            det > 0.0
        } else {
            det < 0.0
        }
    };

    for p in 0..n {
        // Triangles whose circumcircle contains p form the cavity.
        let (bad, good): (Vec<[usize; 3]>, Vec<[usize; 3]>) =
            tris.into_iter().partition(|t| in_circumcircle(t, p));
        // Cavity boundary = edges appearing in exactly one bad triangle.
        let mut boundary: Vec<(usize, usize)> = Vec::new();
        for t in &bad {
            for e in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                let key = (e.0.min(e.1), e.0.max(e.1));
                if let Some(pos) = boundary.iter().position(|&b| b == key) {
                    boundary.swap_remove(pos);
                } else {
                    boundary.push(key);
                }
            }
        }
        tris = good;
        for (a, b) in boundary {
            tris.push([a, b, p]);
        }
    }

    // Collect edges between real vertices only.
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
    for t in &tris {
        for e in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
            if e.0 < n && e.1 < n {
                let (a, b) = (e.0 as u32, e.1 as u32);
                if !lists[a as usize].contains(&b) {
                    lists[a as usize].push(b);
                    lists[b as usize].push(a);
                }
            }
        }
    }
    for l in &mut lists {
        l.sort_unstable();
    }
    CsrGraph::from_lists(&lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::synthetic::MixtureSpec;

    fn grid() -> Dataset {
        Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
        ])
    }

    #[test]
    fn exact_knng_is_directed_knn() {
        let ds = grid();
        let g = exact_knng(&ds, 2, 2);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(4), &[2, 1]); // nearest two to (5,5)
    }

    #[test]
    fn exact_rng_prunes_occluded_edges() {
        // Three collinear points: the long edge 0-2 is occluded by 1.
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let g = exact_rng(&ds);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn exact_rng_is_symmetric_and_connected_enough() {
        let ds = grid();
        let g = exact_rng(&ds);
        for v in 0..ds.len() as u32 {
            for &u in g.neighbors(v) {
                assert!(g.neighbors(u).contains(&v), "edge {v}->{u} not mutual");
            }
        }
    }

    #[test]
    fn prim_spans_with_minimum_weight() {
        let ds = grid();
        let ids: Vec<u32> = (0..5).collect();
        let p = mst_prim(&ds, &ids);
        let k = mst_kruskal(&ds, &ids);
        assert_eq!(p.len(), 4);
        assert!((total_weight(&p) - total_weight(&k)).abs() < 1e-6);
        // Spanning: union-find over Prim edges leaves one component.
        let mut uf = UnionFind::new(5);
        for e in &p {
            uf.union(e.a, e.b);
        }
        assert_eq!(uf.components(), 1);
    }

    #[test]
    fn mst_on_subset_uses_global_ids() {
        let ds = grid();
        let edges = mst_prim(&ds, &[2, 4]);
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].a, edges[0].b), (2, 4));
    }

    #[test]
    fn delaunay_square_includes_hull_and_one_diagonal() {
        let ds = Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]);
        let dg = delaunay_2d(&ds);
        // Hull edges always present.
        for (a, b) in [(0u32, 1u32), (0, 2), (1, 3), (2, 3)] {
            assert!(dg.neighbors(a).contains(&b), "hull edge {a}-{b} missing");
        }
        // Exactly one diagonal (co-circular tie broken either way).
        let diagonals = [dg.neighbors(0).contains(&3), dg.neighbors(1).contains(&2)];
        assert_eq!(diagonals.iter().filter(|&&d| d).count(), 1);
        // Symmetric.
        for v in 0..4u32 {
            for &u in dg.neighbors(v) {
                assert!(dg.neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn delaunay_contains_rng_contains_mst() {
        // The Figure 2 inclusion chain, on a moderate random 2-D set.
        let ds = MixtureSpec::table10(2, 60, 2, 8.0, 2).generate().0;
        let dg = delaunay_2d(&ds);
        let rng_graph = exact_rng(&ds);
        let ids: Vec<u32> = (0..ds.len() as u32).collect();
        let mst = mst_prim(&ds, &ids);
        for v in 0..ds.len() as u32 {
            for &u in rng_graph.neighbors(v) {
                assert!(
                    dg.neighbors(v).contains(&u),
                    "RNG edge {v}-{u} missing from DG"
                );
            }
        }
        for e in &mst {
            assert!(
                rng_graph.neighbors(e.a).contains(&e.b),
                "MST edge {}-{} missing from RNG",
                e.a,
                e.b
            );
        }
    }

    #[test]
    fn delaunay_triangulation_has_expected_edge_count() {
        // Planar triangulation: E <= 3n - 6.
        let ds = MixtureSpec::table10(2, 100, 3, 5.0, 2).generate().0;
        let dg = delaunay_2d(&ds);
        assert!(dg.num_edges() / 2 <= 3 * ds.len() - 6);
        // And it is connected.
        assert_eq!(crate::connectivity::weak_components(&dg), 1);
    }

    #[test]
    fn mst_trivial_cases() {
        let ds = grid();
        assert!(mst_prim(&ds, &[]).is_empty());
        assert!(mst_prim(&ds, &[3]).is_empty());
        assert!(mst_kruskal(&ds, &[3]).is_empty());
    }
}
