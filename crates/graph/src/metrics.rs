//! Index-quality metrics from §5.1: graph quality, degree statistics, and
//! index size.

use crate::adjacency::CsrGraph;

/// Out-degree statistics (Table 4's AD and Table 11's D_max / D_min).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Mean out-degree.
    pub avg: f64,
    /// Maximum out-degree.
    pub max: usize,
    /// Minimum out-degree.
    pub min: usize,
}

/// Computes out-degree statistics.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.len();
    if n == 0 {
        return DegreeStats {
            avg: 0.0,
            max: 0,
            min: 0,
        };
    }
    let mut max = 0usize;
    let mut min = usize::MAX;
    for v in 0..n as u32 {
        let d = g.degree(v);
        max = max.max(d);
        min = min.min(d);
    }
    DegreeStats {
        avg: g.num_edges() as f64 / n as f64,
        max,
        min,
    }
}

/// Graph quality `|E' ∩ E| / |E|` (§5.1): the fraction of the exact KNNG's
/// edges present in the index. `exact` is the per-vertex exact neighbor id
/// list from [`weavess_data::ground_truth::exact_knn_graph`].
pub fn graph_quality(index: &CsrGraph, exact: &[Vec<u32>]) -> f64 {
    assert_eq!(index.len(), exact.len());
    let mut total = 0usize;
    let mut hit = 0usize;
    for v in 0..index.len() as u32 {
        let have = index.neighbors(v);
        for t in &exact[v as usize] {
            total += 1;
            if have.contains(t) {
                hit += 1;
            }
        }
    }
    if total == 0 {
        return 1.0;
    }
    hit as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_stats_over_uneven_lists() {
        let g = CsrGraph::from_lists(&[vec![1u32, 2, 3], vec![0u32], vec![]]);
        let s = degree_stats(&g);
        assert_eq!(s.max, 3);
        assert_eq!(s.min, 0);
        assert!((s.avg - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn graph_quality_counts_exact_edge_recall() {
        let exact = vec![vec![1u32, 2], vec![0u32, 2], vec![1u32, 0]];
        let perfect = CsrGraph::from_lists(&exact);
        assert_eq!(graph_quality(&perfect, &exact), 1.0);
        let half = CsrGraph::from_lists(&[vec![1u32], vec![0u32], vec![1u32]]);
        assert_eq!(graph_quality(&half, &exact), 0.5);
        let none = CsrGraph::from_lists(&[vec![], vec![], vec![]]);
        assert_eq!(graph_quality(&none, &exact), 0.0);
    }

    #[test]
    fn graph_quality_ignores_extra_edges() {
        let exact = vec![vec![1u32], vec![0u32]];
        let padded = CsrGraph::from_lists(&[vec![1u32, 0], vec![0u32, 1]]);
        assert_eq!(graph_quality(&padded, &exact), 1.0);
    }
}
