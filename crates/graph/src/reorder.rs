//! Locality-aware graph reordering (ParlayANN-style, arXiv 2305.04359).
//!
//! Best-first search expands vertices in roughly breadth-first order from
//! the entry point, so renumbering vertices by a BFS from the medoid puts
//! vertices that are expanded together *next to each other* in the edge
//! array and the vector storage — turning the random-access walk into a
//! mostly-forward scan over a small working set.
//!
//! Everything here is deterministic: BFS frontier order is fixed by the
//! adjacency, ties are broken hub-first (higher out-degree first, then
//! lower old id), and disconnected components are appended in the same
//! hub-first order. A [`Permutation`] carries both directions of the
//! renumbering so indexes can accept and return ids in the caller's
//! original id space — reordering is invisible except for speed.

use crate::adjacency::CsrGraph;
use weavess_data::Dataset;

/// A bijective vertex renumbering with both directions materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    /// `forward[old] = new`.
    forward: Vec<u32>,
    /// `inverse[new] = old`.
    inverse: Vec<u32>,
}

impl Permutation {
    /// The identity permutation over `n` vertices.
    pub fn identity(n: usize) -> Self {
        let forward: Vec<u32> = (0..n as u32).collect();
        Permutation {
            inverse: forward.clone(),
            forward,
        }
    }

    /// Reconstructs a permutation from its inverse array (`inverse[new] =
    /// old`), validating that it is a bijection — the persist layer loads
    /// through this.
    pub fn from_inverse(inverse: Vec<u32>) -> Result<Self, String> {
        let n = inverse.len();
        let mut forward = vec![u32::MAX; n];
        for (new, &old) in inverse.iter().enumerate() {
            if old as usize >= n {
                return Err(format!("permutation entry {old} out of range (n={n})"));
            }
            if forward[old as usize] != u32::MAX {
                return Err(format!("permutation maps old id {old} twice"));
            }
            forward[old as usize] = new as u32;
        }
        Ok(Permutation { forward, inverse })
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Maps an original-space id into the reordered space.
    #[inline]
    pub fn to_new(&self, old: u32) -> u32 {
        self.forward[old as usize]
    }

    /// Maps a reordered-space id back to the original space.
    #[inline]
    pub fn to_old(&self, new: u32) -> u32 {
        self.inverse[new as usize]
    }

    /// Borrows the inverse array (`inverse[new] = old`) for serialization.
    pub fn inverse(&self) -> &[u32] {
        &self.inverse
    }

    /// Renumbers a graph: new vertex `forward[v]` gets the neighbors
    /// `forward[u]` for `u` in `neighbors(v)`, adjacency order preserved.
    /// Search over the result visits the *same* vertices in the same
    /// order as over the original (modulo the renaming), which is what
    /// makes the modulo-permutation identity contract provable.
    pub fn apply_to_graph(&self, g: &CsrGraph) -> CsrGraph {
        assert_eq!(g.len(), self.len(), "permutation/graph size mismatch");
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); g.len()];
        for old in 0..g.len() as u32 {
            lists[self.to_new(old) as usize] =
                g.neighbors(old).iter().map(|&u| self.to_new(u)).collect();
        }
        CsrGraph::from_lists(&lists)
    }

    /// Renumbers a dataset: new row `i` is old row `inverse[i]`, so
    /// vector storage follows the same locality order as the graph.
    pub fn apply_to_dataset(&self, ds: &Dataset) -> Dataset {
        assert_eq!(ds.len(), self.len(), "permutation/dataset size mismatch");
        ds.subset(&self.inverse)
    }

    /// Heap bytes held by both direction arrays.
    pub fn memory_bytes(&self) -> usize {
        (self.forward.len() + self.inverse.len()) * std::mem::size_of::<u32>()
    }
}

/// Computes the BFS-from-`start` renumbering of `g` with hub-first
/// tiebreaks: within one expansion, unvisited neighbors are enqueued by
/// (out-degree descending, old id ascending); exhausted components are
/// restarted from the highest-degree unvisited vertex. `start` is
/// normally the dataset medoid — the entry point search begins from.
pub fn bfs_order(g: &CsrGraph, start: u32) -> Permutation {
    let n = g.len();
    assert!(n > 0, "cannot reorder an empty graph");
    assert!((start as usize) < n, "start vertex out of range");

    // Hub ranking used for both in-expansion tiebreaks and component
    // restarts: degree descending, old id ascending.
    let mut hubs: Vec<u32> = (0..n as u32).collect();
    hubs.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));

    let mut visited = vec![false; n];
    let mut inverse = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    let mut scratch: Vec<u32> = Vec::new();
    let mut hub_cursor = 0usize;

    visited[start as usize] = true;
    queue.push_back(start);
    loop {
        while let Some(v) = queue.pop_front() {
            inverse.push(v);
            scratch.clear();
            for &u in g.neighbors(v) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    scratch.push(u);
                }
            }
            scratch.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u)), u));
            queue.extend(scratch.iter().copied());
        }
        // Next component, if any: highest-ranked unvisited hub. The
        // cursor only moves forward, so restarts cost O(n) total.
        while hub_cursor < n && visited[hubs[hub_cursor] as usize] {
            hub_cursor += 1;
        }
        match hubs.get(hub_cursor) {
            Some(&root) => {
                visited[root as usize] = true;
                queue.push_back(root);
            }
            None => break,
        }
    }
    debug_assert_eq!(inverse.len(), n);
    Permutation::from_inverse(inverse).expect("BFS produced a bijection")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph() -> CsrGraph {
        // 0-1-2-3-4 chain plus a hub 5 connected to everything.
        CsrGraph::from_lists(&[
            vec![1u32, 5],
            vec![0, 2, 5],
            vec![1, 3, 5],
            vec![2, 4, 5],
            vec![3, 5],
            vec![0, 1, 2, 3, 4],
        ])
    }

    #[test]
    fn identity_roundtrips() {
        let p = Permutation::identity(5);
        for v in 0..5u32 {
            assert_eq!(p.to_new(v), v);
            assert_eq!(p.to_old(v), v);
        }
    }

    #[test]
    fn bfs_is_a_bijection_and_starts_at_start() {
        let g = chain_graph();
        let p = bfs_order(&g, 2);
        assert_eq!(p.to_new(2), 0);
        let mut seen = vec![false; g.len()];
        for v in 0..g.len() as u32 {
            let nv = p.to_new(v);
            assert!(!seen[nv as usize]);
            seen[nv as usize] = true;
            assert_eq!(p.to_old(nv), v);
        }
    }

    #[test]
    fn hub_first_tiebreak_orders_the_frontier() {
        let g = chain_graph();
        let p = bfs_order(&g, 2);
        // From 2, unvisited neighbors are {1, 3, 5}; 5 has degree 5,
        // 1 and 3 have degree 3 each → order 5, 1, 3.
        assert_eq!(p.to_old(1), 5);
        assert_eq!(p.to_old(2), 1);
        assert_eq!(p.to_old(3), 3);
    }

    #[test]
    fn disconnected_components_are_appended_hub_first() {
        // Component A: 0-1. Component B: 2-3-4 (3 is its hub, degree 2).
        let g = CsrGraph::from_lists(&[
            vec![1u32],
            vec![0u32],
            vec![3u32],
            vec![2u32, 4],
            vec![3u32],
        ]);
        let p = bfs_order(&g, 0);
        assert_eq!(p.to_new(0), 0);
        assert_eq!(p.to_new(1), 1);
        // Restart picks 3 (highest degree among {2,3,4}).
        assert_eq!(p.to_new(3), 2);
    }

    #[test]
    fn apply_to_graph_preserves_adjacency_structure() {
        let g = chain_graph();
        let p = bfs_order(&g, 0);
        let rg = p.apply_to_graph(&g);
        assert_eq!(rg.len(), g.len());
        for v in 0..g.len() as u32 {
            let orig: Vec<u32> = g.neighbors(v).to_vec();
            let renamed: Vec<u32> = rg
                .neighbors(p.to_new(v))
                .iter()
                .map(|&u| p.to_old(u))
                .collect();
            assert_eq!(orig, renamed, "vertex {v}");
        }
    }

    #[test]
    fn apply_to_dataset_moves_rows_with_the_ids() {
        let mut ds = Dataset::empty(2);
        for i in 0..4 {
            ds.push(&[i as f32, -(i as f32)]);
        }
        let g = CsrGraph::from_lists(&[vec![1u32], vec![2u32], vec![3u32], vec![0u32]]);
        let p = bfs_order(&g, 3);
        let rds = p.apply_to_dataset(&ds);
        for v in 0..4u32 {
            assert_eq!(rds.point(p.to_new(v)), ds.point(v));
        }
    }

    #[test]
    fn from_inverse_rejects_non_bijections() {
        assert!(Permutation::from_inverse(vec![0, 0]).is_err());
        assert!(Permutation::from_inverse(vec![0, 5]).is_err());
        assert!(Permutation::from_inverse(vec![1, 0]).is_ok());
    }

    #[test]
    fn bfs_is_deterministic() {
        let g = chain_graph();
        assert_eq!(bfs_order(&g, 1), bfs_order(&g, 1));
    }
}
