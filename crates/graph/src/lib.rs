#![warn(missing_docs)]

//! Graph substrate for the WEAVESS reproduction.
//!
//! Owns everything graph-shaped that the algorithms share:
//!
//! - [`adjacency`]: the concurrent build-time graph ([`BuildGraph`]) and the
//!   flat CSR search graph ([`CsrGraph`]).
//! - [`unionfind`]: disjoint sets (connected components, Kruskal).
//! - [`base`]: exact base graphs from §3.1 — KNNG, RNG, MST — used as
//!   baselines, inside algorithms (HCNNG's per-cluster MSTs), and as the
//!   reference for the graph-quality metric.
//! - [`connectivity`]: weakly-connected components and DFS reachability
//!   (the C5 component and the Table 4 "CC" column).
//! - [`metrics`]: graph quality, degree statistics, index size.
//! - [`reorder`]: deterministic BFS-from-medoid vertex renumbering for
//!   cache locality, with the inverse map that keeps caller-visible ids
//!   in the original space.
//! - [`fused`]: the cache-line-aligned fused node arena (degree +
//!   neighbors + vector in one block).
//! - [`overlay`]: the catapult overlay segment — budget-bounded shortcut
//!   edges kept apart from the base graph and merged into a combined
//!   routing graph, so trace-driven adaptation never mutates base bytes.

pub mod adjacency;
pub mod base;
pub mod connectivity;
pub mod fused;
pub mod metrics;
pub mod overlay;
pub mod reorder;
pub mod unionfind;

pub use adjacency::{BuildGraph, CsrGraph};
pub use fused::FusedArena;
pub use overlay::{merge_overlay, strip_overlay, GraphOverlay, OverlayError};
pub use reorder::{bfs_order, Permutation};
pub use unionfind::UnionFind;
