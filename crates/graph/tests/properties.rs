//! Property tests for the graph substrate.

use proptest::prelude::*;
use weavess_data::Dataset;
use weavess_graph::base::{exact_knng, exact_rng, mst_kruskal, mst_prim, total_weight};
use weavess_graph::connectivity::{reachable_from, weak_components};
use weavess_graph::metrics::{degree_stats, graph_quality};
use weavess_graph::{CsrGraph, UnionFind};

fn dataset(points: &[(f32, f32)]) -> Dataset {
    Dataset::from_rows(&points.iter().map(|&(x, y)| vec![x, y]).collect::<Vec<_>>())
}

proptest! {
    /// Prim and Kruskal agree on total MST weight, and the tree spans.
    #[test]
    fn mst_prim_equals_kruskal(
        points in prop::collection::hash_set((0i32..60, 0i32..60), 2..24),
    ) {
        let points: Vec<(f32, f32)> = points.iter().map(|&(x, y)| (x as f32, y as f32)).collect();
        let ds = dataset(&points);
        let ids: Vec<u32> = (0..ds.len() as u32).collect();
        let p = mst_prim(&ds, &ids);
        let k = mst_kruskal(&ds, &ids);
        prop_assert_eq!(p.len(), ds.len() - 1);
        prop_assert!((total_weight(&p) - total_weight(&k)).abs() < 1e-3);
        let mut uf = UnionFind::new(ds.len());
        for e in &p {
            uf.union(e.a, e.b);
        }
        prop_assert_eq!(uf.components(), 1);
    }

    /// The exact RNG is a subgraph of the complete graph with symmetric
    /// edges, and contains the MST (a classic proximity-graph inclusion).
    #[test]
    fn rng_contains_mst(
        points in prop::collection::hash_set((0i32..40, 0i32..40), 3..16),
    ) {
        let points: Vec<(f32, f32)> = points.iter().map(|&(x, y)| (x as f32, y as f32)).collect();
        let ds = dataset(&points);
        let rng_graph = exact_rng(&ds);
        // Symmetry.
        for v in 0..ds.len() as u32 {
            for &u in rng_graph.neighbors(v) {
                prop_assert!(rng_graph.neighbors(u).contains(&v));
            }
        }
        // MST ⊆ RNG (holds when all pairwise distances are distinct;
        // integer grid points may tie, so tolerate rare violations by
        // checking only strictly-unique-weight edges).
        let ids: Vec<u32> = (0..ds.len() as u32).collect();
        let mst = mst_prim(&ds, &ids);
        for e in &mst {
            let unique = (0..ds.len() as u32)
                .flat_map(|a| (0..ds.len() as u32).map(move |b| (a, b)))
                .filter(|&(a, b)| a < b && (a, b) != (e.a, e.b))
                .all(|(a, b)| (ds.dist(a, b) - e.w).abs() > 1e-6);
            if unique {
                prop_assert!(
                    rng_graph.neighbors(e.a).contains(&e.b),
                    "MST edge ({}, {}) missing from RNG",
                    e.a,
                    e.b
                );
            }
        }
    }

    /// CSR round-trips arbitrary adjacency lists and reports consistent
    /// degree statistics.
    #[test]
    fn csr_roundtrip_and_degrees(
        lists in prop::collection::vec(prop::collection::vec(0u32..20, 0..8), 1..20),
    ) {
        // Clamp ids into range.
        let n = lists.len() as u32;
        let lists: Vec<Vec<u32>> = lists
            .iter()
            .map(|l| l.iter().map(|&x| x % n).collect())
            .collect();
        let csr = CsrGraph::from_lists(&lists);
        prop_assert_eq!(csr.to_lists(), lists.clone());
        let stats = degree_stats(&csr);
        let total: usize = lists.iter().map(|l| l.len()).sum();
        prop_assert!((stats.avg - total as f64 / n as f64).abs() < 1e-9);
        prop_assert_eq!(stats.max, lists.iter().map(|l| l.len()).max().unwrap());
        prop_assert_eq!(stats.min, lists.iter().map(|l| l.len()).min().unwrap());
    }

    /// Adding edges never increases the number of weak components, and
    /// reachability never shrinks.
    #[test]
    fn edges_monotonically_connect(
        n in 2usize..16,
        edges in prop::collection::vec((0u32..16, 0u32..16), 1..30),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut prev_cc = n;
        let mut prev_reach = 1usize;
        for &(a, b) in &edges {
            lists[a as usize].push(b);
            let csr = CsrGraph::from_lists(&lists);
            let cc = weak_components(&csr);
            prop_assert!(cc <= prev_cc);
            prev_cc = cc;
            let reach = reachable_from(&csr, 0).iter().filter(|&&r| r).count();
            prop_assert!(reach >= prev_reach);
            prev_reach = reach;
        }
    }

    /// Graph quality of the exact KNNG against itself is 1; dropping any
    /// edges can only lower it.
    #[test]
    fn graph_quality_extremes(
        points in prop::collection::hash_set((0i32..50, 0i32..50), 6..20),
        k in 1usize..4,
    ) {
        let points: Vec<(f32, f32)> = points.iter().map(|&(x, y)| (x as f32, y as f32)).collect();
        let ds = dataset(&points);
        let k = k.min(ds.len() - 1);
        let exact = weavess_data::ground_truth::exact_knn_graph(&ds, k, 1);
        let full = exact_knng(&ds, k, 1);
        prop_assert!((graph_quality(&full, &exact) - 1.0).abs() < 1e-12);
        // Drop every vertex's last edge.
        let dropped: Vec<Vec<u32>> = exact
            .iter()
            .map(|l| l[..l.len().saturating_sub(1)].to_vec())
            .collect();
        let dropped_csr = CsrGraph::from_lists(&dropped);
        prop_assert!(graph_quality(&dropped_csr, &exact) < 1.0);
    }

    /// Union-find: components = n - (successful unions).
    #[test]
    fn unionfind_counts(
        n in 1usize..32,
        pairs in prop::collection::vec((0u32..32, 0u32..32), 0..64),
    ) {
        let mut uf = UnionFind::new(n);
        let mut merges = 0usize;
        for &(a, b) in &pairs {
            if uf.union(a % n as u32, b % n as u32) {
                merges += 1;
            }
        }
        prop_assert_eq!(uf.components(), n - merges);
    }
}
