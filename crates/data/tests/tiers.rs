//! Forced-tier dispatch test: proves [`KernelTier::force`] reaches every
//! public scoring entry point — the free distance functions, the
//! `Dataset` batch seam, SQ8 asymmetric scoring (single and batch), and
//! PQ ADC lookups.
//!
//! The kernel tier is process-wide state, so every assertion lives in
//! ONE `#[test]` in its OWN test binary: the libtest harness runs tests
//! within a binary in parallel, and a second test here could observe a
//! tier mid-force.
//!
//! Not compiled under `paper-fidelity`: that feature pins the scalar
//! tier and `force(non-scalar)` is defined to fail.

#![cfg(not(feature = "paper-fidelity"))]

use weavess_data::distance::{self, scalar, simd, unrolled, KernelTier};
use weavess_data::pq::PqDataset;
use weavess_data::quant::{sq8_distance, sq8_kernels, Sq8Dataset};
use weavess_data::synthetic::MixtureSpec;

/// Reference implementation of the dispatched `squared_euclidean` for a
/// given tier, bypassing the dispatcher.
fn direct_sq_eucl(tier: KernelTier, a: &[f32], b: &[f32]) -> f32 {
    match tier {
        KernelTier::Scalar => scalar::squared_euclidean(a, b),
        KernelTier::Unrolled => unrolled::squared_euclidean(a, b),
        KernelTier::Simd => simd::squared_euclidean(a, b),
    }
}

fn direct_dot(tier: KernelTier, a: &[f32], b: &[f32]) -> f32 {
    match tier {
        KernelTier::Scalar => scalar::dot(a, b),
        KernelTier::Unrolled => unrolled::dot(a, b),
        KernelTier::Simd => simd::dot(a, b),
    }
}

fn direct_cosine(tier: KernelTier, p: &[f32], a: &[f32], b: &[f32]) -> f32 {
    match tier {
        KernelTier::Scalar => scalar::cosine_angle_at(p, a, b),
        KernelTier::Unrolled => unrolled::cosine_angle_at(p, a, b),
        KernelTier::Simd => simd::cosine_angle_at(p, a, b),
    }
}

fn direct_sq8(tier: KernelTier, residual: &[f32], step: &[f32], codes: &[u8]) -> f32 {
    match tier {
        KernelTier::Scalar => sq8_kernels::scalar(residual, step, codes),
        KernelTier::Unrolled => sq8_kernels::unrolled(residual, step, codes),
        KernelTier::Simd => sq8_kernels::simd(residual, step, codes),
    }
}

#[test]
fn forced_tier_reaches_every_public_entry_point() {
    let initial = KernelTier::active();

    // Dim 96 exercises full lanes; the mixture gives non-trivial data.
    let (ds, qs) = MixtureSpec::table10(96, 400, 3, 5.0, 4).generate();
    let sq = Sq8Dataset::quantize(&ds);
    let pq = PqDataset::train(&ds, 8, 256);
    let ids: Vec<u32> = (0..ds.len() as u32).step_by(7).collect();

    // dist_with under scalar and unrolled both run the serial ADC walk;
    // record the scalar-tier values to compare tiers against below.
    let mut adc_by_tier: Vec<Vec<f32>> = Vec::new();

    for tier in KernelTier::ALL {
        if !tier.is_available() {
            // Off-AVX2 hosts: Simd must refuse to force, not fall back
            // silently — silent fallback would let a CI matrix think it
            // covered a tier it never ran.
            assert!(
                KernelTier::force(tier).is_err(),
                "{tier} forced while unavailable"
            );
            continue;
        }
        KernelTier::force(tier).unwrap();
        assert_eq!(KernelTier::active(), tier);

        let mut adc_vals = Vec::new();
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            let p0 = ds.point(0);
            let p1 = ds.point(1);

            // Free functions dispatch to the forced tier's kernel.
            assert_eq!(
                distance::squared_euclidean(q, p0).to_bits(),
                direct_sq_eucl(tier, q, p0).to_bits(),
                "squared_euclidean missed tier {tier}"
            );
            assert_eq!(
                distance::dot(q, p0).to_bits(),
                direct_dot(tier, q, p0).to_bits(),
                "dot missed tier {tier}"
            );
            assert_eq!(
                distance::cosine_angle_at(q, p0, p1).to_bits(),
                direct_cosine(tier, q, p0, p1).to_bits(),
                "cosine_angle_at missed tier {tier}"
            );

            // Dataset seams: dist, dist_to, dist_to_many.
            assert_eq!(
                ds.dist(0, 1).to_bits(),
                direct_sq_eucl(tier, p0, p1).to_bits(),
                "Dataset::dist missed tier {tier}"
            );
            assert_eq!(
                ds.dist_to(q, 0).to_bits(),
                direct_sq_eucl(tier, q, p0).to_bits(),
                "Dataset::dist_to missed tier {tier}"
            );
            let mut batch = Vec::new();
            ds.dist_to_many(q, &ids, &mut batch);
            for (&id, &d) in ids.iter().zip(&batch) {
                assert_eq!(
                    d.to_bits(),
                    direct_sq_eucl(tier, q, ds.point(id)).to_bits(),
                    "Dataset::dist_to_many missed tier {tier} at id {id}"
                );
            }

            // SQ8: single-point wrapper and batch path both score the
            // residual form on the forced tier's kernel.
            let residual: Vec<f32> = q.iter().zip(sq.mins()).map(|(&x, &m)| x - m).collect();
            for &id in &ids {
                let want = direct_sq8(tier, &residual, sq.steps(), sq.codes_of(id));
                assert_eq!(
                    sq.dist_to(q, id).to_bits(),
                    want.to_bits(),
                    "Sq8Dataset::dist_to missed tier {tier} at id {id}"
                );
                assert_eq!(
                    sq8_distance(q, sq.codes_of(id), sq.mins(), sq.steps()).to_bits(),
                    want.to_bits(),
                    "sq8_distance missed tier {tier} at id {id}"
                );
            }
            sq.dist_to_many(q, &ids, &mut batch);
            for (&id, &d) in ids.iter().zip(&batch) {
                assert_eq!(
                    d.to_bits(),
                    direct_sq8(tier, &residual, sq.steps(), sq.codes_of(id)).to_bits(),
                    "Sq8Dataset::dist_to_many missed tier {tier} at id {id}"
                );
            }

            // PQ ADC.
            let t = pq.tables(q);
            for &id in &ids {
                adc_vals.push(pq.dist_with(&t, id));
            }
        }
        adc_by_tier.push(adc_vals);
    }

    // Scalar and unrolled tiers share the serial ADC walk: bit-equal.
    // The simd gather differs only by summation order: tolerance-bounded.
    let scalar_adc = &adc_by_tier[0];
    for (t, vals) in adc_by_tier.iter().enumerate().skip(1) {
        for (j, (&a, &b)) in scalar_adc.iter().zip(vals).enumerate() {
            if KernelTier::ALL[t] == KernelTier::Unrolled {
                assert_eq!(a.to_bits(), b.to_bits(), "ADC scalar vs unrolled at {j}");
            } else {
                assert!(
                    (a - b).abs() <= 1e-4 * a.abs().max(1.0),
                    "ADC scalar vs simd diverged at {j}: {a} vs {b}"
                );
            }
        }
    }

    KernelTier::force(initial).unwrap();
}
