//! Property tests for the data substrate.

use proptest::prelude::*;
use weavess_data::distance::{
    cosine_angle_at, euclidean, scalar, simd, squared_euclidean, unrolled,
};
use weavess_data::metrics::{lid_mle, recall};
use weavess_data::neighbor::{insert_into_pool, Neighbor};
use weavess_data::Dataset;

proptest! {
    /// Squared Euclidean is a symmetric, non-negative form with zero
    /// self-distance, and agrees with the rooted version.
    #[test]
    fn distance_axioms(
        a in prop::collection::vec(-100.0f32..100.0, 1..64),
        b_seed in 0u64..1000,
    ) {
        let b: Vec<f32> = a
            .iter()
            .enumerate()
            .map(|(i, &x)| x + ((b_seed.wrapping_add(i as u64) % 17) as f32 - 8.0))
            .collect();
        let d = squared_euclidean(&a, &b);
        prop_assert!(d >= 0.0);
        prop_assert_eq!(d, squared_euclidean(&b, &a));
        prop_assert_eq!(squared_euclidean(&a, &a), 0.0);
        prop_assert!((euclidean(&a, &b) - d.sqrt()).abs() < 1e-3);
    }

    /// The triangle inequality holds for the true Euclidean distance.
    #[test]
    fn triangle_inequality(
        vals in prop::collection::vec(-50.0f32..50.0, 6..48),
    ) {
        let dim = vals.len() / 3;
        let (a, rest) = vals.split_at(dim);
        let (b, c) = rest.split_at(dim);
        let c = &c[..dim];
        let ab = euclidean(a, b);
        let bc = euclidean(b, c);
        let ac = euclidean(a, &c[..dim]);
        prop_assert!(ac <= ab + bc + 1e-3, "{ac} > {ab} + {bc}");
    }

    /// Cosine of an angle is always within [-1, 1].
    #[test]
    fn cosine_is_bounded(
        p in prop::collection::vec(-10.0f32..10.0, 4),
        a in prop::collection::vec(-10.0f32..10.0, 4),
        b in prop::collection::vec(-10.0f32..10.0, 4),
    ) {
        let c = cosine_angle_at(&p, &a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    /// The bounded pool is always sorted, deduplicated, and within
    /// capacity, and keeps the globally smallest entries seen.
    #[test]
    fn pool_invariants(
        entries in prop::collection::vec((0u32..64, 0.0f32..100.0), 1..80),
        cap in 1usize..12,
    ) {
        let mut pool: Vec<Neighbor> = Vec::new();
        for &(id, d) in &entries {
            insert_into_pool(&mut pool, cap, Neighbor::new(id, d));
        }
        prop_assert!(pool.len() <= cap);
        prop_assert!(pool.windows(2).all(|w| w[0] < w[1]));
        // No (id, dist) duplicates.
        for i in 0..pool.len() {
            for j in (i + 1)..pool.len() {
                prop_assert!(pool[i] != pool[j]);
            }
        }
        // The head is the global minimum of everything inserted.
        let min = entries
            .iter()
            .map(|&(id, d)| Neighbor::new(id, d))
            .min()
            .unwrap();
        prop_assert_eq!(pool[0], min);
    }

    /// Recall is within [0, 1] and equals 1 on identical sets.
    #[test]
    fn recall_bounds(
        truth in prop::collection::hash_set(0u32..1000, 1..20),
    ) {
        let truth: Vec<u32> = truth.into_iter().collect();
        let r = recall(&truth, &truth);
        prop_assert_eq!(r, 1.0);
        let empty: Vec<u32> = Vec::new();
        let r0 = recall(&empty, &truth);
        prop_assert_eq!(r0, 0.0);
    }

    /// The LID estimator is positive on strictly increasing distances.
    #[test]
    fn lid_positive_on_increasing_distances(
        start in 0.1f32..2.0,
        steps in prop::collection::vec(0.01f32..1.0, 3..40),
    ) {
        let mut d = start;
        let dists: Vec<f32> = steps
            .iter()
            .map(|&s| {
                d += s;
                d
            })
            .collect();
        let lid = lid_mle(&dists).unwrap();
        prop_assert!(lid > 0.0, "lid={lid}");
    }

    /// The unrolled kernels agree with the scalar reference within a
    /// 1e-4 relative tolerance, at every dimension shape (pure tail,
    /// chunk boundary, chunks + tail): dims 1, 3, 17, 100 are all hit by
    /// the 1..128 range.
    #[test]
    fn kernel_flavors_agree(
        a in prop::collection::vec(-100.0f32..100.0, 1..128),
        shift in -8.0f32..8.0,
    ) {
        let b: Vec<f32> = a.iter().map(|&x| x * 0.9 + shift).collect();
        let tol = |x: f32, y: f32| (x - y).abs() <= 1e-4 * x.abs().max(y.abs()).max(1.0);
        prop_assert!(
            tol(scalar::squared_euclidean(&a, &b), unrolled::squared_euclidean(&a, &b)),
            "squared_euclidean diverged at dim {}", a.len()
        );
        prop_assert!(
            tol(scalar::dot(&a, &b), unrolled::dot(&a, &b)),
            "dot diverged at dim {}", a.len()
        );
    }

    /// Unrolled `cosine_angle_at` agrees with the scalar reference.
    #[test]
    fn cosine_kernel_flavors_agree(
        p in prop::collection::vec(-10.0f32..10.0, 1..100),
        seed in 0u64..1000,
    ) {
        let a: Vec<f32> = p.iter().enumerate()
            .map(|(i, &x)| x + ((seed.wrapping_add(i as u64) % 13) as f32 - 6.0))
            .collect();
        let b: Vec<f32> = p.iter().enumerate()
            .map(|(i, &x)| x - ((seed.wrapping_mul(3).wrapping_add(i as u64) % 11) as f32 - 5.0))
            .collect();
        let cs = scalar::cosine_angle_at(&p, &a, &b);
        let cu = unrolled::cosine_angle_at(&p, &a, &b);
        prop_assert!((cs - cu).abs() <= 1e-4, "{cs} vs {cu} at dim {}", p.len());
    }

    /// Exercise the named odd dimensions explicitly: 1, 3, 17, 100.
    #[test]
    fn kernel_flavors_agree_at_odd_dims(
        seed in 0u64..10_000,
    ) {
        for dim in [1usize, 3, 17, 100] {
            let a: Vec<f32> = (0..dim)
                .map(|i| ((seed.wrapping_add(i as u64 * 37) % 200) as f32 - 100.0) * 0.5)
                .collect();
            let b: Vec<f32> = (0..dim)
                .map(|i| ((seed.wrapping_mul(7).wrapping_add(i as u64 * 11) % 200) as f32 - 100.0) * 0.5)
                .collect();
            let ds = scalar::squared_euclidean(&a, &b);
            let du = unrolled::squared_euclidean(&a, &b);
            prop_assert!(
                (ds - du).abs() <= 1e-4 * ds.abs().max(1.0),
                "dim {dim}: {ds} vs {du}"
            );
        }
    }

    /// `dist_to_many` equals element-wise `dist_to` exactly (bit-equal):
    /// the batch path runs the same dispatched kernel per point.
    #[test]
    fn dist_to_many_matches_dist_to_exactly(
        n in 1usize..40,
        dim in 1usize..48,
        qseed in 0u64..1000,
    ) {
        let flat: Vec<f32> = (0..n * dim).map(|i| (i as f32 * 0.37).sin() * 10.0).collect();
        let ds = Dataset::from_flat(flat, n, dim);
        let q: Vec<f32> = (0..dim)
            .map(|i| ((qseed.wrapping_add(i as u64) % 41) as f32 - 20.0) * 0.7)
            .collect();
        // Ids in arbitrary (non-contiguous, repeating) order.
        let ids: Vec<u32> = (0..n as u32).rev().chain(0..n as u32 / 2).collect();
        let mut out = Vec::new();
        ds.dist_to_many(&q, &ids, &mut out);
        prop_assert_eq!(out.len(), ids.len());
        for (&i, &d) in ids.iter().zip(out.iter()) {
            // Bit-exact, not approximate: same kernel, same inputs.
            prop_assert_eq!(d.to_bits(), ds.dist_to(&q, i).to_bits(), "id {}", i);
        }
    }

    /// The simd kernels agree with both scalar and unrolled within a
    /// 1e-4 relative tolerance across the 1..128 dim range (pure tail,
    /// one lane, lanes + tail). On hosts without AVX2+FMA the simd
    /// wrappers fall back to unrolled, so the property still holds.
    #[test]
    fn simd_kernels_agree_with_scalar_and_unrolled(
        a in prop::collection::vec(-100.0f32..100.0, 1..128),
        shift in -8.0f32..8.0,
    ) {
        let b: Vec<f32> = a.iter().map(|&x| x * 0.9 + shift).collect();
        let tol = |x: f32, y: f32| (x - y).abs() <= 1e-4 * x.abs().max(y.abs()).max(1.0);
        let dv = simd::squared_euclidean(&a, &b);
        prop_assert!(
            tol(dv, scalar::squared_euclidean(&a, &b))
                && tol(dv, unrolled::squared_euclidean(&a, &b)),
            "squared_euclidean diverged at dim {}", a.len()
        );
        let pv = simd::dot(&a, &b);
        prop_assert!(
            tol(pv, scalar::dot(&a, &b)) && tol(pv, unrolled::dot(&a, &b)),
            "dot diverged at dim {}", a.len()
        );
        let c: Vec<f32> = a.iter().map(|&x| x * -0.5 + 1.0).collect();
        let cv = simd::cosine_angle_at(&a, &b, &c);
        let cs = scalar::cosine_angle_at(&a, &b, &c);
        prop_assert!(
            cv.is_nan() && cs.is_nan() || (cv - cs).abs() <= 1e-4,
            "cosine diverged at dim {}: {} vs {}", a.len(), cv, cs
        );
    }

    /// Simd agreement survives unaligned slice starts: AVX2 loads are
    /// issued with `loadu`, so sub-32-byte offsets must not change the
    /// contract. Slices carved at offsets 0..=4 from a shared buffer.
    #[test]
    fn simd_kernels_agree_at_unaligned_offsets(
        buf in prop::collection::vec(-50.0f32..50.0, 40..160),
        off in 0usize..5,
    ) {
        let half = buf.len() / 2;
        prop_assume!(off < half);
        let a = &buf[off..half];
        let b = &buf[half + off..half + off + a.len()];
        let tol = |x: f32, y: f32| (x - y).abs() <= 1e-4 * x.abs().max(y.abs()).max(1.0);
        prop_assert!(
            tol(simd::squared_euclidean(a, b), scalar::squared_euclidean(a, b)),
            "squared_euclidean diverged at offset {off}, dim {}", a.len()
        );
        prop_assert!(
            tol(simd::dot(a, b), scalar::dot(a, b)),
            "dot diverged at offset {off}, dim {}", a.len()
        );
    }

    /// Simd agreement at the named odd dims plus sub-lane widths
    /// (1..8 floats never fill one AVX2 lane; the wrapper must take the
    /// scalar tail path and stay bit-equal to scalar there).
    #[test]
    fn simd_kernels_agree_at_odd_dims(
        seed in 0u64..10_000,
    ) {
        for dim in [1usize, 2, 3, 5, 7, 8, 9, 15, 17, 31, 33, 100] {
            let a: Vec<f32> = (0..dim)
                .map(|i| ((seed.wrapping_add(i as u64 * 37) % 200) as f32 - 100.0) * 0.5)
                .collect();
            let b: Vec<f32> = (0..dim)
                .map(|i| ((seed.wrapping_mul(7).wrapping_add(i as u64 * 11) % 200) as f32 - 100.0) * 0.5)
                .collect();
            let ds = scalar::squared_euclidean(&a, &b);
            let dv = simd::squared_euclidean(&a, &b);
            prop_assert!(
                (ds - dv).abs() <= 1e-4 * ds.abs().max(1.0),
                "dim {dim}: {ds} vs {dv}"
            );
            if dim < 8 {
                // Below one lane the simd wrapper is the scalar tail:
                // bit-equal, not merely close.
                prop_assert_eq!(ds.to_bits(), dv.to_bits(), "sub-lane dim {}", dim);
            }
        }
    }

    /// Subsetting a dataset preserves the selected rows exactly.
    #[test]
    fn subset_preserves_rows(
        n in 2usize..30,
        dim in 1usize..8,
        pick_seed in 0u64..100,
    ) {
        let flat: Vec<f32> = (0..n * dim).map(|i| (i as f32).sin()).collect();
        let ds = Dataset::from_flat(flat, n, dim);
        let ids: Vec<u32> = (0..n as u32).filter(|i| (i + pick_seed as u32).is_multiple_of(3)).collect();
        prop_assume!(!ids.is_empty());
        let sub = ds.subset(&ids);
        for (j, &i) in ids.iter().enumerate() {
            prop_assert_eq!(sub.point(j as u32), ds.point(i));
        }
    }
}
