//! Property tests for the data substrate.

use proptest::prelude::*;
use weavess_data::distance::{cosine_angle_at, euclidean, squared_euclidean};
use weavess_data::metrics::{lid_mle, recall};
use weavess_data::neighbor::{insert_into_pool, Neighbor};
use weavess_data::Dataset;

proptest! {
    /// Squared Euclidean is a symmetric, non-negative form with zero
    /// self-distance, and agrees with the rooted version.
    #[test]
    fn distance_axioms(
        a in prop::collection::vec(-100.0f32..100.0, 1..64),
        b_seed in 0u64..1000,
    ) {
        let b: Vec<f32> = a
            .iter()
            .enumerate()
            .map(|(i, &x)| x + ((b_seed.wrapping_add(i as u64) % 17) as f32 - 8.0))
            .collect();
        let d = squared_euclidean(&a, &b);
        prop_assert!(d >= 0.0);
        prop_assert_eq!(d, squared_euclidean(&b, &a));
        prop_assert_eq!(squared_euclidean(&a, &a), 0.0);
        prop_assert!((euclidean(&a, &b) - d.sqrt()).abs() < 1e-3);
    }

    /// The triangle inequality holds for the true Euclidean distance.
    #[test]
    fn triangle_inequality(
        vals in prop::collection::vec(-50.0f32..50.0, 6..48),
    ) {
        let dim = vals.len() / 3;
        let (a, rest) = vals.split_at(dim);
        let (b, c) = rest.split_at(dim);
        let c = &c[..dim];
        let ab = euclidean(a, b);
        let bc = euclidean(b, c);
        let ac = euclidean(a, &c[..dim]);
        prop_assert!(ac <= ab + bc + 1e-3, "{ac} > {ab} + {bc}");
    }

    /// Cosine of an angle is always within [-1, 1].
    #[test]
    fn cosine_is_bounded(
        p in prop::collection::vec(-10.0f32..10.0, 4),
        a in prop::collection::vec(-10.0f32..10.0, 4),
        b in prop::collection::vec(-10.0f32..10.0, 4),
    ) {
        let c = cosine_angle_at(&p, &a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    /// The bounded pool is always sorted, deduplicated, and within
    /// capacity, and keeps the globally smallest entries seen.
    #[test]
    fn pool_invariants(
        entries in prop::collection::vec((0u32..64, 0.0f32..100.0), 1..80),
        cap in 1usize..12,
    ) {
        let mut pool: Vec<Neighbor> = Vec::new();
        for &(id, d) in &entries {
            insert_into_pool(&mut pool, cap, Neighbor::new(id, d));
        }
        prop_assert!(pool.len() <= cap);
        prop_assert!(pool.windows(2).all(|w| w[0] < w[1]));
        // No (id, dist) duplicates.
        for i in 0..pool.len() {
            for j in (i + 1)..pool.len() {
                prop_assert!(pool[i] != pool[j]);
            }
        }
        // The head is the global minimum of everything inserted.
        let min = entries
            .iter()
            .map(|&(id, d)| Neighbor::new(id, d))
            .min()
            .unwrap();
        prop_assert_eq!(pool[0], min);
    }

    /// Recall is within [0, 1] and equals 1 on identical sets.
    #[test]
    fn recall_bounds(
        truth in prop::collection::hash_set(0u32..1000, 1..20),
    ) {
        let truth: Vec<u32> = truth.into_iter().collect();
        let r = recall(&truth, &truth);
        prop_assert_eq!(r, 1.0);
        let empty: Vec<u32> = Vec::new();
        let r0 = recall(&empty, &truth);
        prop_assert_eq!(r0, 0.0);
    }

    /// The LID estimator is positive on strictly increasing distances.
    #[test]
    fn lid_positive_on_increasing_distances(
        start in 0.1f32..2.0,
        steps in prop::collection::vec(0.01f32..1.0, 3..40),
    ) {
        let mut d = start;
        let dists: Vec<f32> = steps
            .iter()
            .map(|&s| {
                d += s;
                d
            })
            .collect();
        let lid = lid_mle(&dists).unwrap();
        prop_assert!(lid > 0.0, "lid={lid}");
    }

    /// Subsetting a dataset preserves the selected rows exactly.
    #[test]
    fn subset_preserves_rows(
        n in 2usize..30,
        dim in 1usize..8,
        pick_seed in 0u64..100,
    ) {
        let flat: Vec<f32> = (0..n * dim).map(|i| (i as f32).sin()).collect();
        let ds = Dataset::from_flat(flat, n, dim);
        let ids: Vec<u32> = (0..n as u32).filter(|i| (i + pick_seed as u32).is_multiple_of(3)).collect();
        prop_assume!(!ids.is_empty());
        let sub = ds.subset(&ids);
        for (j, &i) in ids.iter().enumerate() {
            prop_assert_eq!(sub.point(j as u32), ds.point(i));
        }
    }
}
