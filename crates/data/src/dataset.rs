//! Flat, row-major vector dataset.

use crate::distance::squared_euclidean;
use crate::neighbor::Neighbor;

/// A dense set of `n` vectors of dimension `dim`, stored contiguously
/// row-major. Points are addressed by `u32` ids (the survey's largest
/// dataset is ~2M points; `u32` halves edge-list memory vs `usize`).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    data: Vec<f32>,
    n: usize,
    dim: usize,
}

impl Dataset {
    /// Wraps a flat buffer of `n * dim` floats.
    ///
    /// # Panics
    /// Panics if `data.len() != n * dim` or `dim == 0`.
    pub fn from_flat(data: Vec<f32>, n: usize, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len(), n * dim, "buffer length must be n * dim");
        Dataset { data, n, dim }
    }

    /// Builds a dataset from per-point rows (testing convenience).
    ///
    /// # Panics
    /// Panics if rows are empty or have inconsistent dimensions.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "dataset must contain at least one point");
        let dim = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * dim);
        for r in rows {
            assert_eq!(r.len(), dim, "all rows must share a dimension");
            data.extend_from_slice(r);
        }
        Dataset {
            data,
            n: rows.len(),
            dim,
        }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th vector.
    #[inline]
    pub fn point(&self, i: u32) -> &[f32] {
        let s = i as usize * self.dim;
        &self.data[s..s + self.dim]
    }

    /// The underlying flat buffer.
    #[inline]
    pub fn flat(&self) -> &[f32] {
        &self.data
    }

    /// Squared Euclidean distance between base points `a` and `b`.
    #[inline]
    pub fn dist(&self, a: u32, b: u32) -> f32 {
        squared_euclidean(self.point(a), self.point(b))
    }

    /// Squared Euclidean distance between an external query and base point `b`.
    #[inline]
    pub fn dist_to(&self, query: &[f32], b: u32) -> f32 {
        squared_euclidean(query, self.point(b))
    }

    /// Scores `query` against every id in `ids` in one pass, overwriting
    /// `out` (cleared and refilled; capacity is reused across calls).
    ///
    /// Beam expansion calls this once per expanded vertex instead of one
    /// [`Self::dist_to`] per neighbor: the query slice and its bounds stay
    /// hot across the whole batch. Each output is computed by the exact
    /// same kernel as `dist_to`, so `out[i]` is bit-equal to
    /// `self.dist_to(query, ids[i])` — batching never perturbs results.
    #[inline]
    pub fn dist_to_many(&self, query: &[f32], ids: &[u32], out: &mut Vec<f32>) {
        debug_assert_eq!(query.len(), self.dim);
        crate::distance::squared_euclidean_to_many(query, &self.data, self.dim, ids, out);
    }

    /// Points per work unit for the threaded scans below. Fixed (rather
    /// than derived from the thread count) so reduction order — and hence
    /// every floating-point rounding — is identical at any parallelism.
    const SCAN_CHUNK: usize = 8_192;

    /// Component-wise mean of all points (the "approximate centroid" used by
    /// NSG's and Vamana's seed preprocessing). Threaded over fixed-size
    /// chunks whose partial sums are combined in chunk order, so the result
    /// is independent of the worker count.
    pub fn centroid(&self) -> Vec<f32> {
        let chunks: Vec<&[f32]> = self.data.chunks(Self::SCAN_CHUNK * self.dim).collect();
        let workers = Self::scan_workers(chunks.len());
        let per = chunks.len().div_ceil(workers).max(1);
        let mut partials: Vec<Vec<f64>> = vec![Vec::new(); chunks.len()];
        std::thread::scope(|scope| {
            for (w, slot) in partials.chunks_mut(per).enumerate() {
                let chunks = &chunks;
                let dim = self.dim;
                scope.spawn(move || {
                    for (j, out) in slot.iter_mut().enumerate() {
                        let mut acc = vec![0.0f64; dim];
                        for row in chunks[w * per + j].chunks_exact(dim) {
                            for (a, &x) in acc.iter_mut().zip(row) {
                                *a += x as f64;
                            }
                        }
                        *out = acc;
                    }
                });
            }
        });
        let mut c = vec![0.0f64; self.dim];
        for p in &partials {
            for (a, &x) in c.iter_mut().zip(p) {
                *a += x;
            }
        }
        c.iter().map(|&x| (x / self.n as f64) as f32).collect()
    }

    /// The base point nearest to the centroid (the *medoid*; NSG's fixed
    /// entry point). Threaded linear scan; each chunk covers an ascending
    /// id range and the chunk minima are folded in order with a strict `<`,
    /// so the serial "first strict improvement" winner is reproduced at any
    /// worker count.
    pub fn medoid(&self) -> u32 {
        let c = self.centroid();
        let nchunks = self.n.div_ceil(Self::SCAN_CHUNK).max(1);
        let workers = Self::scan_workers(nchunks);
        let per = nchunks.div_ceil(workers).max(1);
        let mut bests: Vec<Neighbor> = vec![Neighbor::new(0, f32::INFINITY); nchunks];
        std::thread::scope(|scope| {
            for (w, slot) in bests.chunks_mut(per).enumerate() {
                let c = &c;
                let this = &*self;
                scope.spawn(move || {
                    for (j, out) in slot.iter_mut().enumerate() {
                        let lo = (w * per + j) * Self::SCAN_CHUNK;
                        let hi = (lo + Self::SCAN_CHUNK).min(this.n);
                        let mut best = Neighbor::new(0, f32::INFINITY);
                        for i in lo as u32..hi as u32 {
                            let d = this.dist_to(c, i);
                            if d < best.dist {
                                best = Neighbor::new(i, d);
                            }
                        }
                        *out = best;
                    }
                });
            }
        });
        let mut best = Neighbor::new(0, f32::INFINITY);
        for b in bests {
            if b.dist < best.dist {
                best = b;
            }
        }
        best.id
    }

    /// Worker count for the threaded scans: bounded by available
    /// parallelism and the number of work units.
    fn scan_workers(nchunks: usize) -> usize {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(nchunks)
            .max(1)
    }

    /// A new dataset containing the given rows of `self` (dataset-division
    /// substrate for divide-and-conquer builders and validation splits).
    pub fn subset(&self, ids: &[u32]) -> Dataset {
        let mut data = Vec::with_capacity(ids.len() * self.dim);
        for &i in ids {
            data.extend_from_slice(self.point(i));
        }
        Dataset {
            data,
            n: ids.len(),
            dim: self.dim,
        }
    }

    /// Approximate heap footprint of the raw vectors, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// An empty dataset of the given dimensionality (growable via
    /// [`Self::push`]; the substrate for dynamically updated indexes).
    pub fn empty(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Dataset {
            data: Vec::new(),
            n: 0,
            dim,
        }
    }

    /// Appends one vector, returning its new id.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn push(&mut self, point: &[f32]) -> u32 {
        assert_eq!(point.len(), self.dim, "dimension mismatch");
        self.data.extend_from_slice(point);
        self.n += 1;
        (self.n - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Dataset {
        Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ])
    }

    #[test]
    fn accessors_roundtrip() {
        let ds = square();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.point(2), &[0.0, 1.0]);
    }

    #[test]
    fn distances_match_kernel() {
        let ds = square();
        assert_eq!(ds.dist(0, 3), 2.0);
        assert_eq!(ds.dist_to(&[0.5, 0.0], 1), 0.25);
    }

    #[test]
    fn centroid_and_medoid_of_square() {
        let ds = square();
        assert_eq!(ds.centroid(), vec![0.5, 0.5]);
        // All four corners are equidistant from the centroid; the scan keeps
        // the first strict improvement, i.e. point 0.
        assert_eq!(ds.medoid(), 0);
    }

    #[test]
    fn subset_extracts_rows() {
        let ds = square();
        let sub = ds.subset(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.point(0), &[1.0, 1.0]);
        assert_eq!(sub.point(1), &[1.0, 0.0]);
    }

    #[test]
    fn empty_and_push_grow_the_dataset() {
        let mut ds = Dataset::empty(3);
        assert!(ds.is_empty());
        assert_eq!(ds.push(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(ds.push(&[4.0, 5.0, 6.0]), 1);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(1), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.dist(0, 1), 27.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_rejects_wrong_dimension() {
        let mut ds = Dataset::empty(2);
        ds.push(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_flat_validates_shape() {
        let _ = Dataset::from_flat(vec![0.0; 5], 2, 3);
    }
}
