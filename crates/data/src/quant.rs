//! Scalar quantization (SQ8): 8-bit codes with per-dimension affine
//! dequantization.
//!
//! The survey's "Challenges" (§6) notes that graph algorithms keep raw
//! vectors in memory — their dominant cost — and that "how to organically
//! combine data encoding ... with graph-based ANNS algorithms is a problem
//! worth exploring". SQ8 is the simplest such encoding: 4× smaller
//! vectors, asymmetric (f32 query vs u8 base) distances, exact-vector
//! reranking left to the caller.

use crate::dataset::Dataset;

/// The SQ8 asymmetric distance kernel: squared Euclidean distance from an
/// `f32` query to one point's `u8` codes under per-dimension affine
/// dequantization `x[d] = min[d] + codes[d] * step[d]`.
///
/// This free function is the single definition of the kernel. Both
/// [`Sq8Dataset::dist_to`] and the fused node arena's SQ8 payload call
/// it, so a fused index is bit-identical to the split one by
/// construction, not by coincidence.
#[inline]
pub fn sq8_distance(query: &[f32], codes: &[u8], min: &[f32], step: &[f32]) -> f32 {
    debug_assert_eq!(query.len(), codes.len());
    debug_assert_eq!(query.len(), min.len());
    debug_assert_eq!(query.len(), step.len());
    let mut acc = 0.0f32;
    for d in 0..query.len() {
        let x = min[d] + codes[d] as f32 * step[d];
        let diff = query[d] - x;
        acc += diff * diff;
    }
    acc
}

/// A scalar-quantized dataset: one byte per dimension per point.
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Dataset {
    codes: Vec<u8>,
    n: usize,
    dim: usize,
    /// Per-dimension minimum (dequantization offset).
    min: Vec<f32>,
    /// Per-dimension step (dequantization scale).
    step: Vec<f32>,
}

impl Sq8Dataset {
    /// Quantizes a dataset with per-dimension min/max ranges.
    pub fn quantize(ds: &Dataset) -> Sq8Dataset {
        let dim = ds.dim();
        let n = ds.len();
        let mut min = vec![f32::INFINITY; dim];
        let mut max = vec![f32::NEG_INFINITY; dim];
        for i in 0..n as u32 {
            for (d, &x) in ds.point(i).iter().enumerate() {
                min[d] = min[d].min(x);
                max[d] = max[d].max(x);
            }
        }
        let step: Vec<f32> = min
            .iter()
            .zip(&max)
            .map(|(&lo, &hi)| ((hi - lo) / 255.0).max(f32::MIN_POSITIVE))
            .collect();
        let mut codes = Vec::with_capacity(n * dim);
        for i in 0..n as u32 {
            for (d, &x) in ds.point(i).iter().enumerate() {
                let c = ((x - min[d]) / step[d]).round().clamp(0.0, 255.0);
                codes.push(c as u8);
            }
        }
        Sq8Dataset {
            codes,
            n,
            dim,
            min,
            step,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Asymmetric squared distance: f32 query vs quantized base point.
    #[inline]
    pub fn dist_to(&self, query: &[f32], id: u32) -> f32 {
        debug_assert_eq!(query.len(), self.dim);
        sq8_distance(query, self.codes_of(id), &self.min, &self.step)
    }

    /// Borrows point `id`'s raw codes (`dim` bytes).
    #[inline]
    pub fn codes_of(&self, id: u32) -> &[u8] {
        &self.codes[id as usize * self.dim..(id as usize + 1) * self.dim]
    }

    /// Per-dimension dequantization offsets.
    pub fn mins(&self) -> &[f32] {
        &self.min
    }

    /// Per-dimension dequantization scales.
    pub fn steps(&self) -> &[f32] {
        &self.step
    }

    /// Reconstructs one point (lossy).
    pub fn decode(&self, id: u32) -> Vec<f32> {
        let codes = &self.codes[id as usize * self.dim..(id as usize + 1) * self.dim];
        (0..self.dim)
            .map(|d| self.min[d] + codes[d] as f32 * self.step[d])
            .collect()
    }

    /// Worst-case squared quantization error of a single reconstructed
    /// point: `Σ (step/2)²`.
    pub fn max_sq_error(&self) -> f32 {
        self.step.iter().map(|s| (s / 2.0) * (s / 2.0)).sum()
    }

    /// Heap bytes: codes + affine parameters. Compare against
    /// [`Dataset::memory_bytes`]'s `4 × n × dim`.
    pub fn memory_bytes(&self) -> usize {
        self.codes.len() + (self.min.len() + self.step.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::MixtureSpec;

    fn dataset() -> Dataset {
        MixtureSpec::table10(16, 500, 3, 5.0, 5).generate().0
    }

    #[test]
    fn memory_is_roughly_quarter() {
        let ds = dataset();
        let q = Sq8Dataset::quantize(&ds);
        assert!(q.memory_bytes() * 3 < ds.memory_bytes());
    }

    #[test]
    fn reconstruction_error_is_bounded() {
        let ds = dataset();
        let q = Sq8Dataset::quantize(&ds);
        let bound = q.max_sq_error();
        for i in (0..ds.len() as u32).step_by(17) {
            let rec = q.decode(i);
            let err: f32 = ds
                .point(i)
                .iter()
                .zip(&rec)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            assert!(err <= bound * 1.001, "point {i}: err {err} > bound {bound}");
        }
    }

    #[test]
    fn asymmetric_distance_tracks_true_distance() {
        let (ds, qs) = MixtureSpec::table10(16, 500, 3, 5.0, 20).generate();
        let q = Sq8Dataset::quantize(&ds);
        // Orderings agree on the vast majority of triples.
        let mut agree = 0usize;
        let mut total = 0usize;
        for qi in 0..qs.len() as u32 {
            let query = qs.point(qi);
            for i in (0..ds.len() as u32 - 1).step_by(23) {
                let (a, b) = (i, i + 1);
                let true_order = ds.dist_to(query, a) < ds.dist_to(query, b);
                let q_order = q.dist_to(query, a) < q.dist_to(query, b);
                total += 1;
                if true_order == q_order {
                    agree += 1;
                }
            }
        }
        assert!(agree as f64 / total as f64 > 0.95, "{agree}/{total}");
    }

    #[test]
    fn constant_dimension_does_not_divide_by_zero() {
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![5.0, i as f32]); // dim 0 constant
        }
        let ds = Dataset::from_rows(&rows);
        let q = Sq8Dataset::quantize(&ds);
        assert!((q.decode(3)[0] - 5.0).abs() < 1e-3);
    }
}
