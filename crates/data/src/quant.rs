//! Scalar quantization (SQ8): 8-bit codes with per-dimension affine
//! dequantization.
//!
//! The survey's "Challenges" (§6) notes that graph algorithms keep raw
//! vectors in memory — their dominant cost — and that "how to organically
//! combine data encoding ... with graph-based ANNS algorithms is a problem
//! worth exploring". SQ8 is the simplest such encoding: 4× smaller
//! vectors, asymmetric (f32 query vs u8 base) distances, exact-vector
//! reranking left to the caller.
//!
//! ## Asymmetric scoring in residual form
//!
//! Dequantizing per candidate — `x[d] = min[d] + code·step[d]`, then
//! `(q[d] − x[d])²` — re-pays the `min` addition for every candidate of
//! every query. Algebraically the distance is
//! `Σ ((q[d] − min[d]) − code·step[d])²`, so the per-dimension transform
//! `r[d] = q[d] − min[d]` (the *residual*) can be hoisted out and
//! computed **once per query**: every candidate then costs one fused
//! multiply-subtract per dimension against the precomputed residual.
//! [`sq8_distance_prepped`] is that kernel, in three [`KernelTier`]
//! flavors (the `simd` tier additionally widens the `u8` codes to `f32`
//! in-register — the dequantized vector never exists in memory).
//! [`Sq8Dataset`]'s batch scoring and the fused arena's SQ8 payload both
//! hoist the residual once per batch through [`with_sq8_residual`].

use crate::dataset::Dataset;
use crate::distance::KernelTier;
use std::cell::RefCell;

/// Per-tier SQ8 asymmetric kernels in residual form: given
/// `residual[d] = query[d] − min[d]` and the per-dimension `step`,
/// each computes `Σ (residual[d] − codes[d]·step[d])²`.
///
/// Within one tier the kernels are bit-deterministic; across tiers they
/// differ only by summation order and FMA rounding (the crate-wide
/// ≤ ~1e-4 relative contract). For `dim < 8` the `simd` kernel is pure
/// scalar tail; for `dim < 16` the `unrolled` kernel is — both then
/// bit-equal to `scalar`.
pub mod sq8_kernels {
    /// Plain reference loop (the scalar tier).
    #[inline]
    pub fn scalar(residual: &[f32], step: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(residual.len(), step.len());
        debug_assert_eq!(residual.len(), codes.len());
        let mut acc = 0.0f32;
        for d in 0..residual.len() {
            let diff = residual[d] - codes[d] as f32 * step[d];
            acc += diff * diff;
        }
        acc
    }

    /// Autovectorizer-friendly 16-lane chunks feeding 4 accumulators
    /// (the unrolled tier), scalar tail identical to [`scalar`].
    #[inline]
    pub fn unrolled(residual: &[f32], step: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(residual.len(), step.len());
        debug_assert_eq!(residual.len(), codes.len());
        const CHUNK: usize = 16;
        let mut cr = residual.chunks_exact(CHUNK);
        let mut cs = step.chunks_exact(CHUNK);
        let mut cc = codes.chunks_exact(CHUNK);
        let mut acc = [0.0f32; 4];
        for ((r, s), c) in (&mut cr).zip(&mut cs).zip(&mut cc) {
            for (lane, slot) in acc.iter_mut().enumerate() {
                let o = lane * 4;
                let d0 = r[o] - c[o] as f32 * s[o];
                let d1 = r[o + 1] - c[o + 1] as f32 * s[o + 1];
                let d2 = r[o + 2] - c[o + 2] as f32 * s[o + 2];
                let d3 = r[o + 3] - c[o + 3] as f32 * s[o + 3];
                *slot += d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3;
            }
        }
        let mut tail = 0.0f32;
        for ((r, s), c) in cr
            .remainder()
            .iter()
            .zip(cs.remainder())
            .zip(cc.remainder())
        {
            let d = r - *c as f32 * s;
            tail += d * d;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// Explicit AVX2+FMA kernel (the simd tier); checked — falls back to
    /// [`unrolled`] off AVX2 hardware.
    #[inline]
    pub fn simd(residual: &[f32], step: &[f32], codes: &[u8]) -> f32 {
        crate::distance::simd::sq8_residual_distance(residual, step, codes)
    }
}

/// SQ8 asymmetric distance in residual form through the active
/// [`KernelTier`] — the single definition of the scoring kernel. Both
/// [`Sq8Dataset`] and the fused node arena's SQ8 payload call it, so a
/// fused index is bit-identical to the split one by construction, not by
/// coincidence.
#[inline]
pub fn sq8_distance_prepped(residual: &[f32], step: &[f32], codes: &[u8]) -> f32 {
    match KernelTier::active() {
        KernelTier::Scalar => sq8_kernels::scalar(residual, step, codes),
        KernelTier::Unrolled => sq8_kernels::unrolled(residual, step, codes),
        KernelTier::Simd => sq8_kernels::simd(residual, step, codes),
    }
}

thread_local! {
    /// Reusable residual buffer for [`with_sq8_residual`]: one per
    /// thread, grown to the largest dimensionality seen.
    static SQ8_RESIDUAL: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Computes the per-query residual `r[d] = query[d] − min[d]` into a
/// thread-local scratch buffer and passes it to `f`. Batch scoring loops
/// call this once per batch (the per-expansion granularity of graph
/// search), then score every candidate against the same residual —
/// hoisting the dequantization transform out of the per-candidate loop.
///
/// Single-candidate paths ([`sq8_distance`]) use the same helper, so
/// batch and single scoring share one arithmetic form and stay bit-equal
/// within a tier.
#[inline]
pub fn with_sq8_residual<R>(query: &[f32], min: &[f32], f: impl FnOnce(&[f32]) -> R) -> R {
    debug_assert_eq!(query.len(), min.len());
    SQ8_RESIDUAL.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        buf.extend(query.iter().zip(min).map(|(&q, &m)| q - m));
        f(&buf)
    })
}

/// The SQ8 asymmetric distance kernel: squared Euclidean distance from an
/// `f32` query to one point's `u8` codes under per-dimension affine
/// dequantization `x[d] = min[d] + codes[d]·step[d]`, computed in
/// residual form (see the module docs) through the active [`KernelTier`].
///
/// Convenience wrapper over [`with_sq8_residual`] +
/// [`sq8_distance_prepped`] for one-off scoring; batch loops hoist the
/// residual themselves.
#[inline]
pub fn sq8_distance(query: &[f32], codes: &[u8], min: &[f32], step: &[f32]) -> f32 {
    debug_assert_eq!(query.len(), codes.len());
    debug_assert_eq!(query.len(), min.len());
    debug_assert_eq!(query.len(), step.len());
    with_sq8_residual(query, min, |residual| {
        sq8_distance_prepped(residual, step, codes)
    })
}

/// A scalar-quantized dataset: one byte per dimension per point.
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Dataset {
    codes: Vec<u8>,
    n: usize,
    dim: usize,
    /// Per-dimension minimum (dequantization offset).
    min: Vec<f32>,
    /// Per-dimension step (dequantization scale).
    step: Vec<f32>,
}

impl Sq8Dataset {
    /// Quantizes a dataset with per-dimension min/max ranges.
    pub fn quantize(ds: &Dataset) -> Sq8Dataset {
        let dim = ds.dim();
        let n = ds.len();
        let mut min = vec![f32::INFINITY; dim];
        let mut max = vec![f32::NEG_INFINITY; dim];
        for i in 0..n as u32 {
            for (d, &x) in ds.point(i).iter().enumerate() {
                min[d] = min[d].min(x);
                max[d] = max[d].max(x);
            }
        }
        let step: Vec<f32> = min
            .iter()
            .zip(&max)
            .map(|(&lo, &hi)| ((hi - lo) / 255.0).max(f32::MIN_POSITIVE))
            .collect();
        let mut codes = Vec::with_capacity(n * dim);
        for i in 0..n as u32 {
            for (d, &x) in ds.point(i).iter().enumerate() {
                let c = ((x - min[d]) / step[d]).round().clamp(0.0, 255.0);
                codes.push(c as u8);
            }
        }
        Sq8Dataset {
            codes,
            n,
            dim,
            min,
            step,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Asymmetric squared distance: f32 query vs quantized base point.
    #[inline]
    pub fn dist_to(&self, query: &[f32], id: u32) -> f32 {
        debug_assert_eq!(query.len(), self.dim);
        sq8_distance(query, self.codes_of(id), &self.min, &self.step)
    }

    /// Scores `query` against every id in `ids`, overwriting `out`
    /// (cleared and refilled), with the per-query dequantization residual
    /// hoisted out of the candidate loop: one `q − min` pass per batch,
    /// then one fused kernel call per candidate. Each output is bit-equal
    /// to [`Sq8Dataset::dist_to`] on the same tier (both run the same
    /// residual-form kernel). When prefetching is enabled the code lines
    /// for id `j + 2` are requested while id `j` is scored, mirroring
    /// [`crate::VectorView::dist_to_many`].
    #[inline]
    pub fn dist_to_many(&self, query: &[f32], ids: &[u32], out: &mut Vec<f32>) {
        debug_assert_eq!(query.len(), self.dim);
        out.clear();
        out.reserve(ids.len());
        let prefetch = crate::prefetch::prefetch_enabled();
        with_sq8_residual(query, &self.min, |residual| {
            // Tier resolved once per batch, not once per candidate.
            let kernel = match KernelTier::active() {
                KernelTier::Scalar => sq8_kernels::scalar,
                KernelTier::Unrolled => sq8_kernels::unrolled,
                KernelTier::Simd => sq8_kernels::simd,
            };
            for (j, &id) in ids.iter().enumerate() {
                if prefetch {
                    if let Some(&ahead) = ids.get(j + 2) {
                        let c = self.codes_of(ahead);
                        crate::prefetch::prefetch_span(c.as_ptr(), c.len());
                    }
                }
                out.push(kernel(residual, &self.step, self.codes_of(id)));
            }
        });
    }

    /// Borrows point `id`'s raw codes (`dim` bytes).
    #[inline]
    pub fn codes_of(&self, id: u32) -> &[u8] {
        &self.codes[id as usize * self.dim..(id as usize + 1) * self.dim]
    }

    /// Per-dimension dequantization offsets.
    pub fn mins(&self) -> &[f32] {
        &self.min
    }

    /// Per-dimension dequantization scales.
    pub fn steps(&self) -> &[f32] {
        &self.step
    }

    /// Reconstructs one point (lossy).
    pub fn decode(&self, id: u32) -> Vec<f32> {
        let codes = &self.codes[id as usize * self.dim..(id as usize + 1) * self.dim];
        (0..self.dim)
            .map(|d| self.min[d] + codes[d] as f32 * self.step[d])
            .collect()
    }

    /// Worst-case squared quantization error of a single reconstructed
    /// point: `Σ (step/2)²`.
    pub fn max_sq_error(&self) -> f32 {
        self.step.iter().map(|s| (s / 2.0) * (s / 2.0)).sum()
    }

    /// Heap bytes: codes + affine parameters. Compare against
    /// [`Dataset::memory_bytes`]'s `4 × n × dim`.
    pub fn memory_bytes(&self) -> usize {
        self.codes.len() + (self.min.len() + self.step.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::MixtureSpec;

    fn dataset() -> Dataset {
        MixtureSpec::table10(16, 500, 3, 5.0, 5).generate().0
    }

    #[test]
    fn memory_is_roughly_quarter() {
        let ds = dataset();
        let q = Sq8Dataset::quantize(&ds);
        assert!(q.memory_bytes() * 3 < ds.memory_bytes());
    }

    #[test]
    fn reconstruction_error_is_bounded() {
        let ds = dataset();
        let q = Sq8Dataset::quantize(&ds);
        let bound = q.max_sq_error();
        for i in (0..ds.len() as u32).step_by(17) {
            let rec = q.decode(i);
            let err: f32 = ds
                .point(i)
                .iter()
                .zip(&rec)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            assert!(err <= bound * 1.001, "point {i}: err {err} > bound {bound}");
        }
    }

    #[test]
    fn asymmetric_distance_tracks_true_distance() {
        let (ds, qs) = MixtureSpec::table10(16, 500, 3, 5.0, 20).generate();
        let q = Sq8Dataset::quantize(&ds);
        // Orderings agree on the vast majority of triples.
        let mut agree = 0usize;
        let mut total = 0usize;
        for qi in 0..qs.len() as u32 {
            let query = qs.point(qi);
            for i in (0..ds.len() as u32 - 1).step_by(23) {
                let (a, b) = (i, i + 1);
                let true_order = ds.dist_to(query, a) < ds.dist_to(query, b);
                let q_order = q.dist_to(query, a) < q.dist_to(query, b);
                total += 1;
                if true_order == q_order {
                    agree += 1;
                }
            }
        }
        assert!(agree as f64 / total as f64 > 0.95, "{agree}/{total}");
    }

    #[test]
    fn constant_dimension_does_not_divide_by_zero() {
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![5.0, i as f32]); // dim 0 constant
        }
        let ds = Dataset::from_rows(&rows);
        let q = Sq8Dataset::quantize(&ds);
        assert!((q.decode(3)[0] - 5.0).abs() < 1e-3);
    }
}
