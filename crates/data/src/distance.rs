//! Scalar Euclidean distance kernels.
//!
//! The survey strips SIMD intrinsics, prefetching, and other
//! hardware-specific optimizations from every algorithm so that measured
//! differences come from the graphs themselves (§5.1 "Implementation
//! setup"). These kernels are therefore deliberately plain scalar Rust;
//! anything the autovectorizer does applies to all algorithms equally.
//!
//! All graph code compares *squared* Euclidean distances: the square root is
//! monotone, so nearest-neighbor orderings are identical and we avoid a
//! `sqrt` per comparison.

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// True Euclidean distance (`l2` norm of the difference), Equation 1 of the
/// paper. Only used at reporting boundaries; internal comparisons use
/// [`squared_euclidean`].
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    squared_euclidean(a, b).sqrt()
}

/// Inner product of two equal-length vectors.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Euclidean norm of a vector.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine of the angle ∠(u, v) between two direction vectors, clamped to
/// [-1, 1]. Returns 1.0 for degenerate (zero-length) inputs so that
/// zero-offset "directions" are treated as maximally aligned (and hence
/// pruned first by angle-based selectors such as DPG's and NSSG's).
#[inline]
pub fn cosine_angle(u: &[f32], v: &[f32]) -> f32 {
    let nu = norm(u);
    let nv = norm(v);
    if nu == 0.0 || nv == 0.0 {
        return 1.0;
    }
    (dot(u, v) / (nu * nv)).clamp(-1.0, 1.0)
}

/// Cosine of the angle at `p` formed by points `a` and `b` (∠ a-p-b),
/// computed from the offset vectors `a - p` and `b - p` without allocating.
#[inline]
pub fn cosine_angle_at(p: &[f32], a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(p.len(), a.len());
    debug_assert_eq!(p.len(), b.len());
    let mut dab = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for i in 0..p.len() {
        let ua = a[i] - p[i];
        let ub = b[i] - p[i];
        dab += ua * ub;
        na += ua * ua;
        nb += ub * ub;
    }
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    (dab / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_matches_hand_computation() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(squared_euclidean(&a, &b), 9.0 + 16.0);
        assert_eq!(euclidean(&a, &b), 5.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = [0.5, -1.5, 2.25, 0.0];
        let b = [1.0, 0.0, -3.0, 4.0];
        assert_eq!(squared_euclidean(&a, &b), squared_euclidean(&b, &a));
        assert_eq!(squared_euclidean(&a, &a), 0.0);
    }

    #[test]
    fn cosine_angle_of_orthogonal_vectors_is_zero() {
        let u = [1.0, 0.0];
        let v = [0.0, 2.0];
        assert!(cosine_angle(&u, &v).abs() < 1e-6);
    }

    #[test]
    fn cosine_angle_at_matches_offset_formulation() {
        let p = [1.0, 1.0];
        let a = [2.0, 1.0]; // offset (1, 0)
        let b = [1.0, 3.0]; // offset (0, 2)
        assert!(cosine_angle_at(&p, &a, &b).abs() < 1e-6);
        let c = [3.0, 1.0]; // offset (2, 0): parallel to a-p
        assert!((cosine_angle_at(&p, &a, &c) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_direction_counts_as_aligned() {
        let p = [1.0, 1.0];
        assert_eq!(cosine_angle_at(&p, &p, &[2.0, 2.0]), 1.0);
    }
}
