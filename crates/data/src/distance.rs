//! Euclidean distance kernels in three tiers, selected at runtime.
//!
//! The survey strips SIMD intrinsics, prefetching, and other
//! hardware-specific optimizations from every algorithm so that measured
//! differences come from the graphs themselves (§5.1 "Implementation
//! setup"). The [`scalar`] module keeps those deliberately plain loops;
//! [`unrolled`] holds multi-accumulator, chunk-unrolled kernels in stable
//! Rust that break the floating-point dependency chain so the
//! autovectorizer can emit packed instructions; [`simd`] states the
//! vectorization outright with explicit AVX2+FMA `std::arch` intrinsics.
//! The same tier applies to every algorithm equally, so relative
//! comparisons remain meaningful while absolute numbers approach what
//! the hardware allows.
//!
//! **Selection** is a [`KernelTier`]: resolved once at first use from CPU
//! feature detection (`simd` where AVX2+FMA exist, else `unrolled`),
//! overridable by the `WEAVESS_KERNEL=scalar|unrolled|simd` environment
//! variable and programmatically by [`KernelTier::force`] — so every tier
//! is testable on any box. The `paper-fidelity` cargo feature pins the
//! scalar tier at compile time for survey-faithful runs (the dispatcher
//! is bypassed entirely; `force` to another tier reports an error).
//!
//! **Determinism contract**: within one tier the kernels are fully
//! deterministic — accumulation order is fixed, so equal inputs always
//! produce bit-equal outputs at any thread/worker/shard count. Across
//! tiers results differ only by floating-point reassociation and FMA
//! rounding (≤ ~1e-4 relative on unit-scale data; see the property tests
//! in `crates/data/tests/properties.rs`).
//!
//! All graph code compares *squared* Euclidean distances: the square root is
//! monotone, so nearest-neighbor orderings are identical and we avoid a
//! `sqrt` per comparison.

use std::sync::atomic::{AtomicU8, Ordering};

pub mod simd;

/// Survey-faithful plain scalar loops (§5.1). Selected by the
/// `paper-fidelity` feature; always available for tests and benches.
pub mod scalar {
    /// Squared Euclidean distance between two equal-length vectors.
    #[inline]
    pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        for i in 0..a.len() {
            let d = a[i] - b[i];
            acc += d * d;
        }
        acc
    }

    /// Inner product of two equal-length vectors.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        for i in 0..a.len() {
            acc += a[i] * b[i];
        }
        acc
    }

    /// Cosine of the angle at `p` formed by points `a` and `b` (∠ a-p-b),
    /// computed from the offset vectors `a - p` and `b - p` without
    /// allocating.
    #[inline]
    pub fn cosine_angle_at(p: &[f32], a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(p.len(), a.len());
        debug_assert_eq!(p.len(), b.len());
        let mut dab = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for i in 0..p.len() {
            let ua = a[i] - p[i];
            let ub = b[i] - p[i];
            dab += ua * ub;
            na += ua * ua;
            nb += ub * ub;
        }
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        (dab / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
    }
}

/// Autovectorizer-friendly kernels: 16-lane chunks feeding 4 independent
/// accumulators (breaking the serial FP dependency chain that blocks
/// vectorization of the naive reduction), plus a scalar tail identical to
/// the [`scalar`] loops. For `dim < 16` the whole input is tail, so the
/// result is bit-equal to the scalar kernel.
pub mod unrolled {
    /// Lanes consumed per unrolled iteration.
    const CHUNK: usize = 16;

    /// Squared Euclidean distance between two equal-length vectors.
    #[inline]
    pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut ca = a.chunks_exact(CHUNK);
        let mut cb = b.chunks_exact(CHUNK);
        let mut acc = [0.0f32; 4];
        for (x, y) in (&mut ca).zip(&mut cb) {
            for (lane, slot) in acc.iter_mut().enumerate() {
                let o = lane * 4;
                let d0 = x[o] - y[o];
                let d1 = x[o + 1] - y[o + 1];
                let d2 = x[o + 2] - y[o + 2];
                let d3 = x[o + 3] - y[o + 3];
                *slot += d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3;
            }
        }
        let mut tail = 0.0f32;
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            let d = x - y;
            tail += d * d;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// Inner product of two equal-length vectors.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut ca = a.chunks_exact(CHUNK);
        let mut cb = b.chunks_exact(CHUNK);
        let mut acc = [0.0f32; 4];
        for (x, y) in (&mut ca).zip(&mut cb) {
            for (lane, slot) in acc.iter_mut().enumerate() {
                let o = lane * 4;
                *slot +=
                    x[o] * y[o] + x[o + 1] * y[o + 1] + x[o + 2] * y[o + 2] + x[o + 3] * y[o + 3];
            }
        }
        let mut tail = 0.0f32;
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            tail += x * y;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// Cosine of the angle at `p` formed by points `a` and `b` (∠ a-p-b).
    /// Single pass over the three slices; the three sums each get their own
    /// accumulator bank.
    #[inline]
    pub fn cosine_angle_at(p: &[f32], a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(p.len(), a.len());
        debug_assert_eq!(p.len(), b.len());
        let mut cp = p.chunks_exact(CHUNK);
        let mut ca = a.chunks_exact(CHUNK);
        let mut cb = b.chunks_exact(CHUNK);
        let mut dab = [0.0f32; 4];
        let mut na = [0.0f32; 4];
        let mut nb = [0.0f32; 4];
        for ((q, x), y) in (&mut cp).zip(&mut ca).zip(&mut cb) {
            for lane in 0..4 {
                let o = lane * 4;
                let mut tab = 0.0f32;
                let mut ta = 0.0f32;
                let mut tb = 0.0f32;
                for j in o..o + 4 {
                    let ua = x[j] - q[j];
                    let ub = y[j] - q[j];
                    tab += ua * ub;
                    ta += ua * ua;
                    tb += ub * ub;
                }
                dab[lane] += tab;
                na[lane] += ta;
                nb[lane] += tb;
            }
        }
        let mut tab = 0.0f32;
        let mut ta = 0.0f32;
        let mut tb = 0.0f32;
        for ((q, x), y) in cp
            .remainder()
            .iter()
            .zip(ca.remainder())
            .zip(cb.remainder())
        {
            let ua = x - q;
            let ub = y - q;
            tab += ua * ub;
            ta += ua * ua;
            tb += ub * ub;
        }
        let dab = (dab[0] + dab[1]) + (dab[2] + dab[3]) + tab;
        let na = (na[0] + na[1]) + (na[2] + na[3]) + ta;
        let nb = (nb[0] + nb[1]) + (nb[2] + nb[3]) + tb;
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        (dab / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
    }
}

/// One hand-written implementation level of the distance kernels.
///
/// Tiers order by hardware specificity: [`Scalar`](KernelTier::Scalar) is
/// the survey-faithful reference, [`Unrolled`](KernelTier::Unrolled)
/// relies on the autovectorizer, [`Simd`](KernelTier::Simd) is explicit
/// AVX2+FMA. The active tier governs every dispatched entry point in this
/// crate: [`squared_euclidean`], [`dot`], [`cosine_angle_at`],
/// [`squared_euclidean_to_many`], the SQ8 kernels in [`crate::quant`],
/// and the PQ ADC lookups in [`crate::pq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// Plain scalar loops (§5.1 survey fidelity).
    Scalar,
    /// Autovectorizer-friendly multi-accumulator kernels.
    Unrolled,
    /// Explicit AVX2+FMA kernels (x86-64 with AVX2 and FMA only).
    Simd,
}

/// Sentinel meaning "not resolved yet" in [`ACTIVE`].
const TIER_UNINIT: u8 = 0xff;

/// The process-wide active tier (`TIER_UNINIT` until first use). Relaxed
/// atomics suffice: the value is a pure performance selector and every
/// tier computes correct distances.
static ACTIVE: AtomicU8 = AtomicU8::new(TIER_UNINIT);

impl KernelTier {
    /// All tiers, in increasing hardware specificity.
    pub const ALL: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Unrolled, KernelTier::Simd];

    /// Stable lowercase name (the `WEAVESS_KERNEL` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Unrolled => "unrolled",
            KernelTier::Simd => "simd",
        }
    }

    /// Parses a `WEAVESS_KERNEL` value (case-insensitive).
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelTier::Scalar),
            "unrolled" => Some(KernelTier::Unrolled),
            "simd" => Some(KernelTier::Simd),
            _ => None,
        }
    }

    /// True when this tier can run on the current host. `Scalar` and
    /// `Unrolled` always can; `Simd` needs AVX2+FMA.
    pub fn is_available(self) -> bool {
        match self {
            KernelTier::Scalar | KernelTier::Unrolled => true,
            KernelTier::Simd => simd::available(),
        }
    }

    /// The best tier the hardware supports: `simd` where AVX2+FMA exist,
    /// else `unrolled`. (Under `paper-fidelity` the dispatcher never
    /// consults this — the scalar tier is pinned.)
    pub fn detect() -> KernelTier {
        if simd::available() {
            KernelTier::Simd
        } else {
            KernelTier::Unrolled
        }
    }

    /// The tier every dispatched kernel currently routes to.
    ///
    /// Resolved on first call: `WEAVESS_KERNEL` if set (falling back with
    /// a warning when it names an unavailable or unknown tier), else
    /// [`KernelTier::detect`]. Under `paper-fidelity` this is always
    /// [`KernelTier::Scalar`].
    #[inline]
    pub fn active() -> KernelTier {
        #[cfg(feature = "paper-fidelity")]
        {
            KernelTier::Scalar
        }
        #[cfg(not(feature = "paper-fidelity"))]
        {
            match ACTIVE.load(Ordering::Relaxed) {
                0 => KernelTier::Scalar,
                1 => KernelTier::Unrolled,
                2 => KernelTier::Simd,
                _ => Self::init_active(),
            }
        }
    }

    /// Cold path of [`KernelTier::active`]: resolves env override +
    /// detection and publishes the result.
    #[cold]
    #[cfg_attr(feature = "paper-fidelity", allow(dead_code))]
    fn init_active() -> KernelTier {
        let tier = match std::env::var("WEAVESS_KERNEL") {
            Ok(v) => match KernelTier::parse(&v) {
                Some(t) if t.is_available() => t,
                Some(t) => {
                    eprintln!(
                        "WEAVESS_KERNEL={} requested but the {} tier is unavailable on this \
                         host; falling back to {}",
                        v,
                        t.name(),
                        KernelTier::detect().name()
                    );
                    KernelTier::detect()
                }
                None => {
                    eprintln!(
                        "WEAVESS_KERNEL={v} is not one of scalar|unrolled|simd; using {}",
                        KernelTier::detect().name()
                    );
                    KernelTier::detect()
                }
            },
            Err(_) => KernelTier::detect(),
        };
        ACTIVE.store(tier as u8, Ordering::Relaxed);
        tier
    }

    /// Forces the active tier for every dispatched entry point in this
    /// process (tests, benches, reproductions). Fails without changing
    /// anything when the tier cannot run here — forcing `simd` on a
    /// non-AVX2 box, or any non-scalar tier under `paper-fidelity`.
    pub fn force(tier: KernelTier) -> Result<(), &'static str> {
        if cfg!(feature = "paper-fidelity") && tier != KernelTier::Scalar {
            return Err("paper-fidelity pins the scalar kernel tier");
        }
        if !tier.is_available() {
            return Err("kernel tier is unavailable on this host (needs AVX2+FMA)");
        }
        ACTIVE.store(tier as u8, Ordering::Relaxed);
        Ok(())
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Comma-separated list of the kernel-relevant CPU features this host
/// exposes (empty off x86-64) — recorded in bench artifacts and the
/// serving metrics so archived numbers stay interpretable.
pub fn host_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats: Vec<&str> = Vec::new();
        if std::is_x86_feature_detected!("sse4.2") {
            feats.push("sse4.2");
        }
        if std::is_x86_feature_detected!("avx") {
            feats.push("avx");
        }
        if std::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if std::is_x86_feature_detected!("fma") {
            feats.push("fma");
        }
        if std::is_x86_feature_detected!("avx512f") {
            feats.push("avx512f");
        }
        feats.join(",")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        String::new()
    }
}

#[cfg(feature = "paper-fidelity")]
pub use scalar::{cosine_angle_at, dot, squared_euclidean};

/// Squared Euclidean distance through the active [`KernelTier`].
#[cfg(not(feature = "paper-fidelity"))]
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    match KernelTier::active() {
        KernelTier::Scalar => scalar::squared_euclidean(a, b),
        KernelTier::Unrolled => unrolled::squared_euclidean(a, b),
        KernelTier::Simd => simd::squared_euclidean(a, b),
    }
}

/// Inner product through the active [`KernelTier`].
#[cfg(not(feature = "paper-fidelity"))]
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    match KernelTier::active() {
        KernelTier::Scalar => scalar::dot(a, b),
        KernelTier::Unrolled => unrolled::dot(a, b),
        KernelTier::Simd => simd::dot(a, b),
    }
}

/// Cosine of the angle at `p` through the active [`KernelTier`].
#[cfg(not(feature = "paper-fidelity"))]
#[inline]
pub fn cosine_angle_at(p: &[f32], a: &[f32], b: &[f32]) -> f32 {
    match KernelTier::active() {
        KernelTier::Scalar => scalar::cosine_angle_at(p, a, b),
        KernelTier::Unrolled => unrolled::cosine_angle_at(p, a, b),
        KernelTier::Simd => simd::cosine_angle_at(p, a, b),
    }
}

/// One-query-many-points squared Euclidean over rows of a row-major
/// matrix: the batch seam behind [`crate::Dataset::dist_to_many`]. The
/// tier is resolved once per batch; each output is bit-equal to the
/// corresponding single [`squared_euclidean`] call on the same tier.
#[inline]
pub fn squared_euclidean_to_many(
    query: &[f32],
    flat: &[f32],
    dim: usize,
    ids: &[u32],
    out: &mut Vec<f32>,
) {
    #[cfg(not(feature = "paper-fidelity"))]
    if KernelTier::active() == KernelTier::Simd {
        simd::squared_euclidean_to_many(query, flat, dim, ids, out);
        return;
    }
    out.clear();
    out.reserve(ids.len());
    for &id in ids {
        let s = id as usize * dim;
        out.push(squared_euclidean(query, &flat[s..s + dim]));
    }
}

/// True Euclidean distance (`l2` norm of the difference), Equation 1 of the
/// paper. Only used at reporting boundaries; internal comparisons use
/// [`squared_euclidean`].
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    squared_euclidean(a, b).sqrt()
}

/// Euclidean norm of a vector.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine of the angle ∠(u, v) between two direction vectors, clamped to
/// [-1, 1]. Returns 1.0 for degenerate (zero-length) inputs so that
/// zero-offset "directions" are treated as maximally aligned (and hence
/// pruned first by angle-based selectors such as DPG's and NSSG's).
#[inline]
pub fn cosine_angle(u: &[f32], v: &[f32]) -> f32 {
    let nu = norm(u);
    let nv = norm(v);
    if nu == 0.0 || nv == 0.0 {
        return 1.0;
    }
    (dot(u, v) / (nu * nv)).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_matches_hand_computation() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(squared_euclidean(&a, &b), 9.0 + 16.0);
        assert_eq!(euclidean(&a, &b), 5.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = [0.5, -1.5, 2.25, 0.0];
        let b = [1.0, 0.0, -3.0, 4.0];
        assert_eq!(squared_euclidean(&a, &b), squared_euclidean(&b, &a));
        assert_eq!(squared_euclidean(&a, &a), 0.0);
    }

    #[test]
    fn cosine_angle_of_orthogonal_vectors_is_zero() {
        let u = [1.0, 0.0];
        let v = [0.0, 2.0];
        assert!(cosine_angle(&u, &v).abs() < 1e-6);
    }

    #[test]
    fn cosine_angle_at_matches_offset_formulation() {
        let p = [1.0, 1.0];
        let a = [2.0, 1.0]; // offset (1, 0)
        let b = [1.0, 3.0]; // offset (0, 2)
        assert!(cosine_angle_at(&p, &a, &b).abs() < 1e-6);
        let c = [3.0, 1.0]; // offset (2, 0): parallel to a-p
        assert!((cosine_angle_at(&p, &a, &c) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_direction_counts_as_aligned() {
        let p = [1.0, 1.0];
        assert_eq!(cosine_angle_at(&p, &p, &[2.0, 2.0]), 1.0);
    }

    #[test]
    fn flavors_agree_below_chunk_size_bit_exactly() {
        // dim < 16 means the unrolled kernels are pure tail, which runs the
        // same loop as the scalar kernels.
        let a: Vec<f32> = (0..15).map(|i| (i as f32) * 0.37 - 2.0).collect();
        let b: Vec<f32> = (0..15).map(|i| (i as f32 * i as f32) * 0.11).collect();
        assert_eq!(
            scalar::squared_euclidean(&a, &b),
            unrolled::squared_euclidean(&a, &b)
        );
        assert_eq!(scalar::dot(&a, &b), unrolled::dot(&a, &b));
        let p: Vec<f32> = (0..15).map(|i| (i as f32).sin()).collect();
        assert_eq!(
            scalar::cosine_angle_at(&p, &a, &b),
            unrolled::cosine_angle_at(&p, &a, &b)
        );
    }

    #[test]
    fn flavors_agree_on_long_vectors_within_tolerance() {
        let a: Vec<f32> = (0..237)
            .map(|i| ((i * 31 % 97) as f32) * 0.021 - 1.0)
            .collect();
        let b: Vec<f32> = (0..237)
            .map(|i| ((i * 17 % 89) as f32) * 0.017 - 0.7)
            .collect();
        let s = scalar::squared_euclidean(&a, &b);
        let u = unrolled::squared_euclidean(&a, &b);
        assert!((s - u).abs() <= 1e-4 * s.abs().max(1.0));
        let s = scalar::dot(&a, &b);
        let u = unrolled::dot(&a, &b);
        assert!((s - u).abs() <= 1e-4 * s.abs().max(1.0));
    }
}
