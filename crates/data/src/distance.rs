//! Euclidean distance kernels, in two compile-time-selected flavors.
//!
//! The survey strips SIMD intrinsics, prefetching, and other
//! hardware-specific optimizations from every algorithm so that measured
//! differences come from the graphs themselves (§5.1 "Implementation
//! setup"). The [`scalar`] module keeps those deliberately plain loops and
//! is selected by the `paper-fidelity` cargo feature for survey-faithful
//! runs. The default build uses [`unrolled`]: multi-accumulator,
//! chunk-unrolled kernels in stable Rust that break the floating-point
//! dependency chain so the autovectorizer can emit packed instructions —
//! the same trick applied to every algorithm equally, so relative
//! comparisons remain meaningful while absolute numbers approach what the
//! hardware allows.
//!
//! Within one build the kernels are fully deterministic: accumulation
//! order is fixed, so equal inputs always produce bit-equal outputs.
//! Across the two flavors results differ only by floating-point
//! reassociation (≤ ~1e-4 relative on unit-scale data; see the property
//! tests in `crates/data/tests/properties.rs`).
//!
//! All graph code compares *squared* Euclidean distances: the square root is
//! monotone, so nearest-neighbor orderings are identical and we avoid a
//! `sqrt` per comparison.

/// Survey-faithful plain scalar loops (§5.1). Selected by the
/// `paper-fidelity` feature; always available for tests and benches.
pub mod scalar {
    /// Squared Euclidean distance between two equal-length vectors.
    #[inline]
    pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        for i in 0..a.len() {
            let d = a[i] - b[i];
            acc += d * d;
        }
        acc
    }

    /// Inner product of two equal-length vectors.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        for i in 0..a.len() {
            acc += a[i] * b[i];
        }
        acc
    }

    /// Cosine of the angle at `p` formed by points `a` and `b` (∠ a-p-b),
    /// computed from the offset vectors `a - p` and `b - p` without
    /// allocating.
    #[inline]
    pub fn cosine_angle_at(p: &[f32], a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(p.len(), a.len());
        debug_assert_eq!(p.len(), b.len());
        let mut dab = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for i in 0..p.len() {
            let ua = a[i] - p[i];
            let ub = b[i] - p[i];
            dab += ua * ub;
            na += ua * ua;
            nb += ub * ub;
        }
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        (dab / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
    }
}

/// Autovectorizer-friendly kernels: 16-lane chunks feeding 4 independent
/// accumulators (breaking the serial FP dependency chain that blocks
/// vectorization of the naive reduction), plus a scalar tail identical to
/// the [`scalar`] loops. For `dim < 16` the whole input is tail, so the
/// result is bit-equal to the scalar kernel.
pub mod unrolled {
    /// Lanes consumed per unrolled iteration.
    const CHUNK: usize = 16;

    /// Squared Euclidean distance between two equal-length vectors.
    #[inline]
    pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut ca = a.chunks_exact(CHUNK);
        let mut cb = b.chunks_exact(CHUNK);
        let mut acc = [0.0f32; 4];
        for (x, y) in (&mut ca).zip(&mut cb) {
            for (lane, slot) in acc.iter_mut().enumerate() {
                let o = lane * 4;
                let d0 = x[o] - y[o];
                let d1 = x[o + 1] - y[o + 1];
                let d2 = x[o + 2] - y[o + 2];
                let d3 = x[o + 3] - y[o + 3];
                *slot += d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3;
            }
        }
        let mut tail = 0.0f32;
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            let d = x - y;
            tail += d * d;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// Inner product of two equal-length vectors.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut ca = a.chunks_exact(CHUNK);
        let mut cb = b.chunks_exact(CHUNK);
        let mut acc = [0.0f32; 4];
        for (x, y) in (&mut ca).zip(&mut cb) {
            for (lane, slot) in acc.iter_mut().enumerate() {
                let o = lane * 4;
                *slot +=
                    x[o] * y[o] + x[o + 1] * y[o + 1] + x[o + 2] * y[o + 2] + x[o + 3] * y[o + 3];
            }
        }
        let mut tail = 0.0f32;
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            tail += x * y;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// Cosine of the angle at `p` formed by points `a` and `b` (∠ a-p-b).
    /// Single pass over the three slices; the three sums each get their own
    /// accumulator bank.
    #[inline]
    pub fn cosine_angle_at(p: &[f32], a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(p.len(), a.len());
        debug_assert_eq!(p.len(), b.len());
        let mut cp = p.chunks_exact(CHUNK);
        let mut ca = a.chunks_exact(CHUNK);
        let mut cb = b.chunks_exact(CHUNK);
        let mut dab = [0.0f32; 4];
        let mut na = [0.0f32; 4];
        let mut nb = [0.0f32; 4];
        for ((q, x), y) in (&mut cp).zip(&mut ca).zip(&mut cb) {
            for lane in 0..4 {
                let o = lane * 4;
                let mut tab = 0.0f32;
                let mut ta = 0.0f32;
                let mut tb = 0.0f32;
                for j in o..o + 4 {
                    let ua = x[j] - q[j];
                    let ub = y[j] - q[j];
                    tab += ua * ub;
                    ta += ua * ua;
                    tb += ub * ub;
                }
                dab[lane] += tab;
                na[lane] += ta;
                nb[lane] += tb;
            }
        }
        let mut tab = 0.0f32;
        let mut ta = 0.0f32;
        let mut tb = 0.0f32;
        for ((q, x), y) in cp
            .remainder()
            .iter()
            .zip(ca.remainder())
            .zip(cb.remainder())
        {
            let ua = x - q;
            let ub = y - q;
            tab += ua * ub;
            ta += ua * ua;
            tb += ub * ub;
        }
        let dab = (dab[0] + dab[1]) + (dab[2] + dab[3]) + tab;
        let na = (na[0] + na[1]) + (na[2] + na[3]) + ta;
        let nb = (nb[0] + nb[1]) + (nb[2] + nb[3]) + tb;
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        (dab / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
    }
}

#[cfg(feature = "paper-fidelity")]
pub use scalar::{cosine_angle_at, dot, squared_euclidean};
#[cfg(not(feature = "paper-fidelity"))]
pub use unrolled::{cosine_angle_at, dot, squared_euclidean};

/// True Euclidean distance (`l2` norm of the difference), Equation 1 of the
/// paper. Only used at reporting boundaries; internal comparisons use
/// [`squared_euclidean`].
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    squared_euclidean(a, b).sqrt()
}

/// Euclidean norm of a vector.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine of the angle ∠(u, v) between two direction vectors, clamped to
/// [-1, 1]. Returns 1.0 for degenerate (zero-length) inputs so that
/// zero-offset "directions" are treated as maximally aligned (and hence
/// pruned first by angle-based selectors such as DPG's and NSSG's).
#[inline]
pub fn cosine_angle(u: &[f32], v: &[f32]) -> f32 {
    let nu = norm(u);
    let nv = norm(v);
    if nu == 0.0 || nv == 0.0 {
        return 1.0;
    }
    (dot(u, v) / (nu * nv)).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_matches_hand_computation() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(squared_euclidean(&a, &b), 9.0 + 16.0);
        assert_eq!(euclidean(&a, &b), 5.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = [0.5, -1.5, 2.25, 0.0];
        let b = [1.0, 0.0, -3.0, 4.0];
        assert_eq!(squared_euclidean(&a, &b), squared_euclidean(&b, &a));
        assert_eq!(squared_euclidean(&a, &a), 0.0);
    }

    #[test]
    fn cosine_angle_of_orthogonal_vectors_is_zero() {
        let u = [1.0, 0.0];
        let v = [0.0, 2.0];
        assert!(cosine_angle(&u, &v).abs() < 1e-6);
    }

    #[test]
    fn cosine_angle_at_matches_offset_formulation() {
        let p = [1.0, 1.0];
        let a = [2.0, 1.0]; // offset (1, 0)
        let b = [1.0, 3.0]; // offset (0, 2)
        assert!(cosine_angle_at(&p, &a, &b).abs() < 1e-6);
        let c = [3.0, 1.0]; // offset (2, 0): parallel to a-p
        assert!((cosine_angle_at(&p, &a, &c) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_direction_counts_as_aligned() {
        let p = [1.0, 1.0];
        assert_eq!(cosine_angle_at(&p, &p, &[2.0, 2.0]), 1.0);
    }

    #[test]
    fn flavors_agree_below_chunk_size_bit_exactly() {
        // dim < 16 means the unrolled kernels are pure tail, which runs the
        // same loop as the scalar kernels.
        let a: Vec<f32> = (0..15).map(|i| (i as f32) * 0.37 - 2.0).collect();
        let b: Vec<f32> = (0..15).map(|i| (i as f32 * i as f32) * 0.11).collect();
        assert_eq!(
            scalar::squared_euclidean(&a, &b),
            unrolled::squared_euclidean(&a, &b)
        );
        assert_eq!(scalar::dot(&a, &b), unrolled::dot(&a, &b));
        let p: Vec<f32> = (0..15).map(|i| (i as f32).sin()).collect();
        assert_eq!(
            scalar::cosine_angle_at(&p, &a, &b),
            unrolled::cosine_angle_at(&p, &a, &b)
        );
    }

    #[test]
    fn flavors_agree_on_long_vectors_within_tolerance() {
        let a: Vec<f32> = (0..237)
            .map(|i| ((i * 31 % 97) as f32) * 0.021 - 1.0)
            .collect();
        let b: Vec<f32> = (0..237)
            .map(|i| ((i * 17 % 89) as f32) * 0.017 - 0.7)
            .collect();
        let s = scalar::squared_euclidean(&a, &b);
        let u = unrolled::squared_euclidean(&a, &b);
        assert!((s - u).abs() <= 1e-4 * s.abs().max(1.0));
        let s = scalar::dot(&a, &b);
        let u = unrolled::dot(&a, &b);
        assert!((s - u).abs() <= 1e-4 * s.abs().max(1.0));
    }
}
