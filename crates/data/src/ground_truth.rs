//! Exact k-nearest-neighbor ground truth by parallel brute force.
//!
//! The paper computes every query's true 20/100 nearest neighbors by linear
//! scan; recall and the exact-KNNG graph-quality reference both depend on
//! this. Work is split across threads with `std::thread::scope` — the same
//! "parallelize only vector math, keep algorithms scalar" policy the paper
//! applies to index construction.

use crate::dataset::Dataset;
use crate::neighbor::{insert_into_pool, Neighbor};

/// Points scored per [`Dataset::dist_to_many`] call in [`knn_scan`] — big
/// enough to amortize the loop, small enough to stay in L1/L2.
const SCAN_BLOCK: u32 = 256;

/// Exact k nearest base points for one query vector (linear scan).
///
/// `exclude` skips one base id (used when the "query" is itself a base
/// point, e.g. when building the exact KNNG).
///
/// The scan is batch-scored over fixed contiguous id blocks; the exclusion
/// check happens at insertion time, so results are identical to the
/// point-at-a-time scan.
pub fn knn_scan(base: &Dataset, query: &[f32], k: usize, exclude: Option<u32>) -> Vec<Neighbor> {
    let mut pool = Vec::with_capacity(k + 1);
    let n = base.len() as u32;
    let mut ids: Vec<u32> = Vec::with_capacity(SCAN_BLOCK as usize);
    let mut dists: Vec<f32> = Vec::with_capacity(SCAN_BLOCK as usize);
    let mut lo = 0u32;
    while lo < n {
        let hi = lo.saturating_add(SCAN_BLOCK).min(n);
        ids.clear();
        ids.extend(lo..hi);
        base.dist_to_many(query, &ids, &mut dists);
        for (&i, &d) in ids.iter().zip(dists.iter()) {
            if exclude == Some(i) {
                continue;
            }
            if pool.len() < k || d < pool.last().map_or(f32::INFINITY, |w: &Neighbor| w.dist) {
                insert_into_pool(&mut pool, k, Neighbor::new(i, d));
            }
        }
        lo = hi;
    }
    pool
}

/// Exact k-NN ids for every query, computed in parallel across `threads`.
pub fn ground_truth(base: &Dataset, queries: &Dataset, k: usize, threads: usize) -> Vec<Vec<u32>> {
    assert_eq!(base.dim(), queries.dim(), "dimension mismatch");
    let nq = queries.len();
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); nq];
    let threads = threads.max(1).min(nq.max(1));
    let chunk = nq.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            s.spawn(move || {
                for (j, row) in slot.iter_mut().enumerate() {
                    let q = queries.point((start + j) as u32);
                    *row = knn_scan(base, q, k, None).iter().map(|n| n.id).collect();
                }
            });
        }
    });
    out
}

/// Exact KNN ids for every *base* point against the rest of the base set
/// (self excluded): the exact KNNG used by the graph-quality metric and by
/// brute-force initializers (IEH, FANNG, k-DR).
pub fn exact_knn_graph(base: &Dataset, k: usize, threads: usize) -> Vec<Vec<u32>> {
    let n = base.len();
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let threads = threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            s.spawn(move || {
                for (j, row) in slot.iter_mut().enumerate() {
                    let id = (start + j) as u32;
                    *row = knn_scan(base, base.point(id), k, Some(id))
                        .iter()
                        .map(|n| n.id)
                        .collect();
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Dataset {
        // Points at x = 0, 1, 2, 3, 4 on a line.
        Dataset::from_rows(&(0..5).map(|i| vec![i as f32, 0.0]).collect::<Vec<_>>())
    }

    #[test]
    fn knn_scan_orders_by_distance() {
        let ds = line();
        let nn = knn_scan(&ds, &[1.9, 0.0], 3, None);
        assert_eq!(nn.iter().map(|n| n.id).collect::<Vec<_>>(), vec![2, 1, 3]);
    }

    #[test]
    fn knn_scan_can_exclude_self() {
        let ds = line();
        let nn = knn_scan(&ds, ds.point(2), 2, Some(2));
        let ids: Vec<u32> = nn.iter().map(|n| n.id).collect();
        assert!(!ids.contains(&2));
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn ground_truth_matches_serial_scan() {
        let ds = line();
        let queries = Dataset::from_rows(&[vec![0.2, 0.0], vec![3.8, 0.0]]);
        let gt = ground_truth(&ds, &queries, 2, 4);
        assert_eq!(gt[0], vec![0, 1]);
        assert_eq!(gt[1], vec![4, 3]);
    }

    #[test]
    fn exact_knn_graph_excludes_self_and_is_parallel_safe() {
        let ds = line();
        for threads in [1, 3] {
            let g = exact_knn_graph(&ds, 2, threads);
            assert_eq!(g.len(), 5);
            assert_eq!(g[0], vec![1, 2]);
            assert_eq!(g[2], vec![1, 3]); // ties broken by id
            for (i, row) in g.iter().enumerate() {
                assert!(!row.contains(&(i as u32)));
            }
        }
    }
}
