//! [`VectorView`]: the storage-side abstraction the routers search over.
//!
//! The search routines only ever need three things from vector storage:
//! how many points there are, a distance from a query to a stored point,
//! and (for guided search's coordinate gate) a borrowed `f32` slice.
//! Putting those behind a trait lets the same beam/backtrack/guided/
//! filtered/range code run over a plain [`Dataset`], an [`Sq8Dataset`]
//! (asymmetric f32-vs-u8 distances), or a fused node arena that stores
//! each vertex's vector next to its adjacency list.
//!
//! The provided [`VectorView::dist_to_many`] mirrors
//! [`Dataset::dist_to_many`] bit-for-bit (same per-id kernel, same
//! accumulation order) and adds software-prefetch look-ahead: while id
//! `j` is being scored, the lines for id `j + AHEAD` are requested.
//! Prefetch is a pure hint, so distances are unchanged with it on or off.

use crate::dataset::Dataset;
use crate::prefetch::prefetch_enabled;
use crate::quant::Sq8Dataset;

/// How many ids ahead of the current one `dist_to_many` prefetches.
/// Scoring one vector costs tens of nanoseconds; two iterations of
/// look-ahead covers an L3/DRAM miss without thrashing the L1 fill
/// buffers.
const PREFETCH_AHEAD: usize = 2;

/// Read access to vector storage, as the search routines consume it.
pub trait VectorView {
    /// Number of stored points.
    fn len(&self) -> usize;

    /// True when no points are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the stored points.
    fn dim(&self) -> usize;

    /// Borrows point `i`'s coordinates. Implementations that do not keep
    /// raw `f32` coordinates (e.g. SQ8 codes) panic; routers that need
    /// coordinates (guided search) document that requirement.
    fn vector(&self, i: u32) -> &[f32];

    /// Squared distance from `query` to stored point `i`.
    fn dist_to(&self, query: &[f32], i: u32) -> f32;

    /// Hints the cache that point `i`'s data is about to be read.
    /// Default: no-op. Implementations prefetch the head of the vector
    /// (or fused block); callers gate on [`prefetch_enabled`] themselves
    /// when issuing per-neighbor hints in a hot loop.
    #[inline]
    fn prefetch_vector(&self, _i: u32) {}

    /// Scores `query` against each of `ids`, appending to `out` (cleared
    /// first), with prefetch look-ahead over the id list. Bit-equal to
    /// calling [`VectorView::dist_to`] per id.
    fn dist_to_many(&self, query: &[f32], ids: &[u32], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(ids.len());
        if prefetch_enabled() {
            for (j, &id) in ids.iter().enumerate() {
                if let Some(&ahead) = ids.get(j + PREFETCH_AHEAD) {
                    self.prefetch_vector(ahead);
                }
                out.push(self.dist_to(query, id));
            }
        } else {
            for &id in ids {
                out.push(self.dist_to(query, id));
            }
        }
    }
}

impl VectorView for Dataset {
    #[inline]
    fn len(&self) -> usize {
        Dataset::len(self)
    }

    #[inline]
    fn dim(&self) -> usize {
        Dataset::dim(self)
    }

    #[inline]
    fn vector(&self, i: u32) -> &[f32] {
        self.point(i)
    }

    #[inline]
    fn dist_to(&self, query: &[f32], i: u32) -> f32 {
        Dataset::dist_to(self, query, i)
    }

    #[inline]
    fn prefetch_vector(&self, i: u32) {
        let p = self.point(i);
        crate::prefetch::prefetch_span(p.as_ptr(), p.len());
    }
}

impl VectorView for Sq8Dataset {
    #[inline]
    fn len(&self) -> usize {
        Sq8Dataset::len(self)
    }

    #[inline]
    fn dim(&self) -> usize {
        Sq8Dataset::dim(self)
    }

    /// SQ8 storage keeps codes, not coordinates. Guided search's
    /// dominant-coordinate gate therefore cannot run over it; use
    /// best-first routing (as `QuantizedIndex` does) instead.
    fn vector(&self, _i: u32) -> &[f32] {
        panic!("Sq8Dataset stores u8 codes; raw coordinates are unavailable (guided search is unsupported over SQ8)")
    }

    #[inline]
    fn dist_to(&self, query: &[f32], i: u32) -> f32 {
        Sq8Dataset::dist_to(self, query, i)
    }

    #[inline]
    fn prefetch_vector(&self, i: u32) {
        let c = self.codes_of(i);
        crate::prefetch::prefetch_span(c.as_ptr(), c.len());
    }

    /// Batch scoring with the per-query dequantization residual hoisted
    /// out of the candidate loop (computed once per batch instead of per
    /// candidate) — bit-equal to per-id [`VectorView::dist_to`] on the
    /// same kernel tier, with the same prefetch look-ahead.
    #[inline]
    fn dist_to_many(&self, query: &[f32], ids: &[u32], out: &mut Vec<f32>) {
        Sq8Dataset::dist_to_many(self, query, ids, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::set_prefetch_enabled;
    use crate::synthetic::MixtureSpec;

    #[test]
    fn dataset_view_matches_inherent_methods_bitwise() {
        let (ds, qs) = MixtureSpec::table10(24, 300, 3, 5.0, 4).generate();
        let view: &dyn VectorView = &ds;
        let ids: Vec<u32> = (0..ds.len() as u32).step_by(7).collect();
        let mut via_view = Vec::new();
        let mut via_inherent = Vec::new();
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            view.dist_to_many(q, &ids, &mut via_view);
            ds.dist_to_many(q, &ids, &mut via_inherent);
            assert_eq!(
                via_view.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                via_inherent.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            for (j, &id) in ids.iter().enumerate() {
                assert_eq!(view.dist_to(q, id).to_bits(), ds.dist_to(q, id).to_bits());
                assert_eq!(view.vector(id), ds.point(id));
                let _ = j;
            }
        }
    }

    #[test]
    fn sq8_view_matches_inherent_distance() {
        let (ds, qs) = MixtureSpec::table10(16, 200, 3, 5.0, 3).generate();
        let sq = Sq8Dataset::quantize(&ds);
        let view: &dyn VectorView = &sq;
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            for i in 0..ds.len() as u32 {
                assert_eq!(view.dist_to(q, i).to_bits(), sq.dist_to(q, i).to_bits());
            }
        }
    }

    #[test]
    fn prefetch_toggle_does_not_change_distances() {
        let (ds, qs) = MixtureSpec::table10(24, 300, 3, 5.0, 2).generate();
        let ids: Vec<u32> = (0..ds.len() as u32).collect();
        let q = qs.point(0);
        let initial = prefetch_enabled();
        let mut on = Vec::new();
        let mut off = Vec::new();
        set_prefetch_enabled(true);
        VectorView::dist_to_many(&ds, q, &ids, &mut on);
        set_prefetch_enabled(false);
        VectorView::dist_to_many(&ds, q, &ids, &mut off);
        set_prefetch_enabled(initial);
        assert_eq!(
            on.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            off.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "raw coordinates are unavailable")]
    fn sq8_vector_access_panics() {
        let (ds, _) = MixtureSpec::table10(8, 50, 2, 5.0, 1).generate();
        let sq = Sq8Dataset::quantize(&ds);
        let view: &dyn VectorView = &sq;
        let _ = view.vector(0);
    }
}
