//! Explicit AVX2+FMA distance kernels — the `simd` tier of the runtime
//! [`KernelTier`](super::KernelTier) dispatch.
//!
//! Where the [`unrolled`](super::unrolled) tier recovers only what the
//! autovectorizer volunteers, these kernels state the vectorization
//! outright with `std::arch` intrinsics: 256-bit lanes (8 f32), fused
//! multiply-add, multiple independent accumulator registers, and — for
//! quantized scoring — in-register `u8 → f32` widening and gathered ADC
//! table lookups, so no dequantized vector is ever materialized.
//!
//! Every public function here is *checked*: it runs the AVX2 path only
//! when the host supports AVX2 and FMA (detected once, cached) and
//! otherwise falls back to the `unrolled` tier, so calling them is safe
//! on any machine. The [`KernelTier`](super::KernelTier) dispatcher never
//! selects this tier on hardware that lacks it, so the hot path pays one
//! predictable branch, not a per-call `cpuid`.
//!
//! Determinism contract (same as the other tiers): accumulation order is
//! fixed, so equal inputs give bit-equal outputs on the same tier. Across
//! tiers results differ only by floating-point reassociation and FMA
//! rounding (≤ ~1e-4 relative on unit-scale data; property-tested in
//! `crates/data/tests/properties.rs`). For `dim < 8` the whole input is
//! scalar tail, so the result is bit-equal to the scalar tier.
//!
//! All loads are unaligned (`loadu`): slice offsets never change results
//! or correctness, and on modern x86 an unaligned load that does not
//! split a cache line costs the same as an aligned one.

/// True when the host can run the AVX2+FMA kernels (detected once,
/// cached; always `false` off x86-64).
pub fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if available() {
        // SAFETY: `available()` verified AVX2+FMA on this host.
        return unsafe { imp::squared_euclidean(a, b) };
    }
    super::unrolled::squared_euclidean(a, b)
}

/// Inner product of two equal-length vectors.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if available() {
        // SAFETY: `available()` verified AVX2+FMA on this host.
        return unsafe { imp::dot(a, b) };
    }
    super::unrolled::dot(a, b)
}

/// Cosine of the angle at `p` formed by points `a` and `b` (∠ a-p-b).
#[inline]
pub fn cosine_angle_at(p: &[f32], a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(p.len(), a.len());
    debug_assert_eq!(p.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if available() {
        // SAFETY: `available()` verified AVX2+FMA on this host.
        return unsafe { imp::cosine_angle_at(p, a, b) };
    }
    super::unrolled::cosine_angle_at(p, a, b)
}

/// One-query-many-points squared Euclidean: scores `query` against row
/// `id` of the row-major `flat` matrix for every id in `ids`, appending
/// to `out` (cleared first). The whole batch runs inside one
/// feature-enabled region, so the per-call dispatch cost is paid once
/// per batch rather than once per point; each output is computed by the
/// exact same instruction sequence as [`squared_euclidean`], so results
/// are bit-equal to the one-at-a-time path.
///
/// # Panics
/// Panics if any id addresses a row outside `flat`.
#[inline]
pub fn squared_euclidean_to_many(
    query: &[f32],
    flat: &[f32],
    dim: usize,
    ids: &[u32],
    out: &mut Vec<f32>,
) {
    out.clear();
    out.reserve(ids.len());
    #[cfg(target_arch = "x86_64")]
    if available() {
        // SAFETY: `available()` verified AVX2+FMA on this host.
        unsafe { imp::squared_euclidean_to_many(query, flat, dim, ids, out) };
        return;
    }
    for &id in ids {
        let s = id as usize * dim;
        out.push(super::unrolled::squared_euclidean(query, &flat[s..s + dim]));
    }
}

/// Fused SQ8 asymmetric distance in residual form: given the per-query
/// residual `r[d] = query[d] - min[d]` and the per-dimension `step`,
/// computes `Σ (r[d] - codes[d]·step[d])²` with codes widened `u8 → f32`
/// in-register — the dequantized vector never exists in memory.
#[inline]
pub fn sq8_residual_distance(residual: &[f32], step: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(residual.len(), step.len());
    debug_assert_eq!(residual.len(), codes.len());
    #[cfg(target_arch = "x86_64")]
    if available() {
        // SAFETY: `available()` verified AVX2+FMA on this host.
        return unsafe { imp::sq8_residual_distance(residual, step, codes) };
    }
    crate::quant::sq8_kernels::unrolled(residual, step, codes)
}

/// PQ asymmetric distance via gathered table lookups: `tables` is the
/// per-query `m × 256` partial-distance table (row-major, one row per
/// subspace), `codes` the point's `m` codebook indices. Eight subspaces
/// are resolved per `vpgatherdps`; the tail falls back to scalar
/// lookups. Summation order (8-lane tree + scalar tail) differs from the
/// scalar tier's left-to-right reduction — bit-identical within this
/// tier, tolerance-bounded across tiers, like every other kernel.
#[inline]
pub fn pq_adc(tables: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(tables.len(), codes.len() * 256);
    #[cfg(target_arch = "x86_64")]
    if available() {
        // SAFETY: `available()` verified AVX2+FMA on this host.
        return unsafe { imp::pq_adc(tables, codes) };
    }
    crate::pq::adc_scalar(tables, codes)
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use std::arch::x86_64::*;

    /// Horizontal sum of one 256-bit register, in a fixed shuffle order
    /// (lanes 0-3 + lanes 4-7, then pairwise): deterministic.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        let s = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(s);
        let sums = _mm_add_ps(s, shuf);
        let shuf2 = _mm_movehl_ps(shuf, sums);
        _mm_cvtss_f32(_mm_add_ss(sums, shuf2))
    }

    /// # Safety
    /// Caller must ensure AVX2+FMA are available.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        // 32 floats per iteration: 4 independent FMA chains hide latency.
        while i + 32 <= n {
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
            );
            let d2 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(i + 16)),
                _mm256_loadu_ps(pb.add(i + 16)),
            );
            let d3 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(i + 24)),
                _mm256_loadu_ps(pb.add(i + 24)),
            );
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            acc2 = _mm256_fmadd_ps(d2, d2, acc2);
            acc3 = _mm256_fmadd_ps(d3, d3, acc3);
            i += 32;
        }
        while i + 8 <= n {
            let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let mut total = hsum256(_mm256_add_ps(
            _mm256_add_ps(acc0, acc1),
            _mm256_add_ps(acc2, acc3),
        ));
        while i < n {
            let d = *pa.add(i) - *pb.add(i);
            total += d * d;
            i += 1;
        }
        total
    }

    /// # Safety
    /// Caller must ensure AVX2+FMA are available.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 32 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 16)),
                _mm256_loadu_ps(pb.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 24)),
                _mm256_loadu_ps(pb.add(i + 24)),
                acc3,
            );
            i += 32;
        }
        while i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            i += 8;
        }
        let mut total = hsum256(_mm256_add_ps(
            _mm256_add_ps(acc0, acc1),
            _mm256_add_ps(acc2, acc3),
        ));
        while i < n {
            total += *pa.add(i) * *pb.add(i);
            i += 1;
        }
        total
    }

    /// # Safety
    /// Caller must ensure AVX2+FMA are available.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn cosine_angle_at(p: &[f32], a: &[f32], b: &[f32]) -> f32 {
        let n = p.len();
        let pp = p.as_ptr();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut dab = _mm256_setzero_ps();
        let mut na = _mm256_setzero_ps();
        let mut nb = _mm256_setzero_ps();
        let mut i = 0usize;
        // Three live accumulators already break the dependency chain; one
        // 8-lane stride keeps register pressure low.
        while i + 8 <= n {
            let q = _mm256_loadu_ps(pp.add(i));
            let ua = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), q);
            let ub = _mm256_sub_ps(_mm256_loadu_ps(pb.add(i)), q);
            dab = _mm256_fmadd_ps(ua, ub, dab);
            na = _mm256_fmadd_ps(ua, ua, na);
            nb = _mm256_fmadd_ps(ub, ub, nb);
            i += 8;
        }
        let mut tab = hsum256(dab);
        let mut ta = hsum256(na);
        let mut tb = hsum256(nb);
        while i < n {
            let ua = *pa.add(i) - *pp.add(i);
            let ub = *pb.add(i) - *pp.add(i);
            tab += ua * ub;
            ta += ua * ua;
            tb += ub * ub;
            i += 1;
        }
        if ta == 0.0 || tb == 0.0 {
            return 1.0;
        }
        (tab / (ta.sqrt() * tb.sqrt())).clamp(-1.0, 1.0)
    }

    /// # Safety
    /// Caller must ensure AVX2+FMA are available.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn squared_euclidean_to_many(
        query: &[f32],
        flat: &[f32],
        dim: usize,
        ids: &[u32],
        out: &mut Vec<f32>,
    ) {
        for &id in ids {
            let s = id as usize * dim;
            // Bounds-checked row slice: an out-of-range id panics rather
            // than reading out of bounds.
            out.push(squared_euclidean(query, &flat[s..s + dim]));
        }
    }

    /// # Safety
    /// Caller must ensure AVX2+FMA are available.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sq8_residual_distance(residual: &[f32], step: &[f32], codes: &[u8]) -> f32 {
        let n = residual.len();
        let pr = residual.as_ptr();
        let ps = step.as_ptr();
        let pc = codes.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0usize;
        // 16 codes per iteration: one unaligned 128-bit load supplies two
        // widened 8-lane groups.
        while i + 16 <= n {
            let c = _mm_loadu_si128(pc.add(i) as *const __m128i);
            let f0 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(c));
            let f1 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_srli_si128::<8>(c)));
            // diff = residual - code·step, fused.
            let d0 = _mm256_fnmadd_ps(f0, _mm256_loadu_ps(ps.add(i)), _mm256_loadu_ps(pr.add(i)));
            let d1 = _mm256_fnmadd_ps(
                f1,
                _mm256_loadu_ps(ps.add(i + 8)),
                _mm256_loadu_ps(pr.add(i + 8)),
            );
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            i += 16;
        }
        while i + 8 <= n {
            let c = _mm_loadl_epi64(pc.add(i) as *const __m128i);
            let f = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(c));
            let d = _mm256_fnmadd_ps(f, _mm256_loadu_ps(ps.add(i)), _mm256_loadu_ps(pr.add(i)));
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let mut total = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            let d = *pr.add(i) - *pc.add(i) as f32 * *ps.add(i);
            total += d * d;
            i += 1;
        }
        total
    }

    /// # Safety
    /// Caller must ensure AVX2+FMA are available.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn pq_adc(tables: &[f32], codes: &[u8]) -> f32 {
        let m = codes.len();
        let pc = codes.as_ptr();
        let mut acc = _mm256_setzero_ps();
        // Lane k of each gather reads row (s+k) of the table block at
        // offset code[s+k]: rows are 256 floats apart.
        let row_off = _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
        let mut s = 0usize;
        while s + 8 <= m {
            let c = _mm_loadl_epi64(pc.add(s) as *const __m128i);
            let idx = _mm256_add_epi32(_mm256_cvtepu8_epi32(c), row_off);
            let vals = _mm256_i32gather_ps::<4>(tables.as_ptr().add(s * 256), idx);
            acc = _mm256_add_ps(acc, vals);
            s += 8;
        }
        let mut total = hsum256(acc);
        while s < m {
            total += *tables.get_unchecked(s * 256 + *pc.add(s) as usize);
            s += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{scalar, unrolled};

    fn vecs(dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 2000) as f32 * 0.01 - 10.0
        };
        let a: Vec<f32> = (0..dim).map(|_| next()).collect();
        let b: Vec<f32> = (0..dim).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn agrees_with_scalar_within_tolerance_across_dims() {
        for dim in [1usize, 3, 7, 8, 9, 15, 16, 31, 32, 33, 96, 100, 128, 237] {
            let (a, b) = vecs(dim, dim as u64);
            let s = scalar::squared_euclidean(&a, &b);
            let v = squared_euclidean(&a, &b);
            assert!(
                (s - v).abs() <= 1e-4 * s.abs().max(1.0),
                "sq_eucl dim {dim}: {s} vs {v}"
            );
            let s = scalar::dot(&a, &b);
            let v = dot(&a, &b);
            assert!(
                (s - v).abs() <= 1e-4 * s.abs().max(1.0),
                "dot dim {dim}: {s} vs {v}"
            );
        }
    }

    #[test]
    fn below_lane_width_is_bit_equal_to_scalar() {
        // dim < 8 is pure scalar tail in this tier.
        for dim in 1..8usize {
            let (a, b) = vecs(dim, 0xab + dim as u64);
            assert_eq!(
                squared_euclidean(&a, &b).to_bits(),
                scalar::squared_euclidean(&a, &b).to_bits()
            );
            assert_eq!(dot(&a, &b).to_bits(), scalar::dot(&a, &b).to_bits());
        }
    }

    #[test]
    fn unaligned_slice_offsets_do_not_change_results() {
        let (a, b) = vecs(96 + 4, 0x0ff5e7);
        for off in 0..4usize {
            let x = &a[off..off + 96];
            let y = &b[off..off + 96];
            let u = unrolled::squared_euclidean(x, y);
            let v = squared_euclidean(x, y);
            assert!(
                (u - v).abs() <= 1e-4 * u.abs().max(1.0),
                "offset {off}: {u} vs {v}"
            );
        }
    }

    #[test]
    fn batch_variant_is_bit_equal_to_single_calls() {
        let dim = 37;
        let n = 50;
        let mut flat = Vec::with_capacity(n * dim);
        for i in 0..n {
            flat.extend(vecs(dim, i as u64).0);
        }
        let (q, _) = vecs(dim, 0xdead);
        let ids: Vec<u32> = (0..n as u32).rev().collect();
        let mut out = Vec::new();
        squared_euclidean_to_many(&q, &flat, dim, &ids, &mut out);
        for (&id, &d) in ids.iter().zip(&out) {
            let s = id as usize * dim;
            assert_eq!(
                d.to_bits(),
                squared_euclidean(&q, &flat[s..s + dim]).to_bits()
            );
        }
    }

    #[test]
    fn cosine_matches_scalar_within_tolerance() {
        for dim in [1usize, 5, 8, 24, 96, 200] {
            let (p, a) = vecs(dim, 7 + dim as u64);
            let (b, _) = vecs(dim, 1000 + dim as u64);
            let s = scalar::cosine_angle_at(&p, &a, &b);
            let v = cosine_angle_at(&p, &a, &b);
            assert!((s - v).abs() <= 1e-4, "dim {dim}: {s} vs {v}");
        }
    }
}
