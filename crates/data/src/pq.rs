//! Product quantization (PQ): split vectors into `m` subspaces, k-means a
//! 256-entry codebook per subspace, store one byte per subspace per point.
//!
//! Two survey hooks:
//!
//! - §4.1 (C4): "[Douze et al.] compresses the original vector by OPQ to
//!   obtain the seeds by quickly calculating the compressed vector" —
//!   PQ's asymmetric distance with per-query lookup tables is that fast
//!   calculation.
//! - §6 Challenges: combining data encoding with graph ANNS. PQ compresses
//!   harder than SQ8 (`m` bytes per point instead of `dim`), trading more
//!   distortion for less memory.
//!
//! Asymmetric distance: for a query, precompute `m × 256` partial
//! distances (one table per subspace); a point's distance is then `m`
//! table lookups — independent of `dim`. Like every scoring kernel in
//! this crate the lookup loop is tiered: the scalar/unrolled tiers run
//! [`adc_scalar`] (a serial table walk — lookups have no FP chain for
//! the autovectorizer to break), the simd tier gathers eight subspace
//! entries per `vpgatherdps` in-register.

use crate::dataset::Dataset;
use crate::distance::{squared_euclidean, KernelTier};

const CODEBOOK: usize = 256;
const KMEANS_ITERS: usize = 8;

/// A trained product quantizer plus the encoded dataset.
#[derive(Debug, Clone)]
pub struct PqDataset {
    /// `m` codebooks, each `CODEBOOK × sub_dim`, concatenated.
    codebooks: Vec<f32>,
    /// Codes, row-major (`n × m` bytes).
    codes: Vec<u8>,
    n: usize,
    dim: usize,
    m: usize,
    sub_dim: usize,
}

/// Per-query lookup tables for asymmetric distances.
pub struct PqTables {
    /// `m × CODEBOOK` partial squared distances.
    tables: Vec<f32>,
}

impl PqDataset {
    /// Trains on `ds` with `m` subspaces (`dim` must be divisible by `m`;
    /// pass `m` like 4, 8, 16). Codebooks are trained on up to `sample`
    /// strided points with plain Lloyd iterations, deterministic seeding.
    pub fn train(ds: &Dataset, m: usize, sample: usize) -> PqDataset {
        let dim = ds.dim();
        assert!(
            m >= 1 && dim.is_multiple_of(m),
            "dim {dim} not divisible by m {m}"
        );
        let sub_dim = dim / m;
        let n = ds.len();
        let take = sample.clamp(CODEBOOK.min(n), n);
        let stride = (n / take).max(1);
        let train_ids: Vec<u32> = (0..take).map(|i| (i * stride) as u32).collect();

        let mut codebooks = vec![0.0f32; m * CODEBOOK * sub_dim];
        for s in 0..m {
            let lo = s * sub_dim;
            // Init centers by strided sampling of training sub-vectors.
            let k = CODEBOOK.min(train_ids.len());
            let book = &mut codebooks[s * CODEBOOK * sub_dim..(s + 1) * CODEBOOK * sub_dim];
            for c in 0..k {
                let id = train_ids[c * train_ids.len() / k];
                book[c * sub_dim..(c + 1) * sub_dim]
                    .copy_from_slice(&ds.point(id)[lo..lo + sub_dim]);
            }
            // Fill any unused centers with copies (only when take < 256).
            for c in k..CODEBOOK {
                let src = (c % k) * sub_dim;
                let (head, tail) = book.split_at_mut(c * sub_dim);
                tail[..sub_dim].copy_from_slice(&head[src..src + sub_dim]);
            }
            // Lloyd iterations.
            let mut assign = vec![0usize; train_ids.len()];
            for _ in 0..KMEANS_ITERS {
                for (i, &id) in train_ids.iter().enumerate() {
                    let v = &ds.point(id)[lo..lo + sub_dim];
                    assign[i] = nearest_center(v, book, sub_dim);
                }
                let mut sums = vec![0.0f64; CODEBOOK * sub_dim];
                let mut counts = vec![0usize; CODEBOOK];
                for (i, &id) in train_ids.iter().enumerate() {
                    let v = &ds.point(id)[lo..lo + sub_dim];
                    counts[assign[i]] += 1;
                    for (acc, &x) in sums[assign[i] * sub_dim..(assign[i] + 1) * sub_dim]
                        .iter_mut()
                        .zip(v)
                    {
                        *acc += x as f64;
                    }
                }
                for c in 0..CODEBOOK {
                    if counts[c] > 0 {
                        for d in 0..sub_dim {
                            book[c * sub_dim + d] =
                                (sums[c * sub_dim + d] / counts[c] as f64) as f32;
                        }
                    }
                }
            }
        }

        // Encode everything.
        let mut codes = vec![0u8; n * m];
        for i in 0..n as u32 {
            let p = ds.point(i);
            for s in 0..m {
                let lo = s * sub_dim;
                let book = &codebooks[s * CODEBOOK * sub_dim..(s + 1) * CODEBOOK * sub_dim];
                codes[i as usize * m + s] =
                    nearest_center(&p[lo..lo + sub_dim], book, sub_dim) as u8;
            }
        }
        PqDataset {
            codebooks,
            codes,
            n,
            dim,
            m,
            sub_dim,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Subspace count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Builds a query's lookup tables (`m × 256` partial distances; the
    /// "fast calculation on the compressed vector").
    pub fn tables(&self, query: &[f32]) -> PqTables {
        assert_eq!(query.len(), self.dim);
        let mut tables = vec![0.0f32; self.m * CODEBOOK];
        for s in 0..self.m {
            let lo = s * self.sub_dim;
            let q = &query[lo..lo + self.sub_dim];
            let book = &self.codebooks[s * CODEBOOK * self.sub_dim..];
            for c in 0..CODEBOOK {
                tables[s * CODEBOOK + c] =
                    squared_euclidean(q, &book[c * self.sub_dim..(c + 1) * self.sub_dim]);
            }
        }
        PqTables { tables }
    }

    /// Asymmetric squared distance via a prepared table: `m` lookups,
    /// gathered in-register on the simd tier.
    #[inline]
    pub fn dist_with(&self, t: &PqTables, id: u32) -> f32 {
        let codes = &self.codes[id as usize * self.m..(id as usize + 1) * self.m];
        match KernelTier::active() {
            KernelTier::Simd => crate::distance::simd::pq_adc(&t.tables, codes),
            _ => adc_scalar(&t.tables, codes),
        }
    }

    /// Reconstructs one point from its codes (lossy).
    pub fn decode(&self, id: u32) -> Vec<f32> {
        let codes = &self.codes[id as usize * self.m..(id as usize + 1) * self.m];
        let mut out = Vec::with_capacity(self.dim);
        for (s, &c) in codes.iter().enumerate() {
            let book = &self.codebooks[s * CODEBOOK * self.sub_dim..];
            out.extend_from_slice(
                &book[c as usize * self.sub_dim..(c as usize + 1) * self.sub_dim],
            );
        }
        out
    }

    /// Heap bytes: codes + codebooks. Compare with `4 · n · dim` raw.
    pub fn memory_bytes(&self) -> usize {
        self.codes.len() + self.codebooks.len() * 4
    }
}

/// Serial ADC table walk (the scalar/unrolled tiers): `tables` is a
/// per-query `m × 256` row-major partial-distance table, `codes` the
/// point's `m` codebook indices. Left-to-right summation, so results are
/// bit-deterministic on these tiers; the simd tier's gathered reduction
/// differs only by summation order.
#[inline]
pub fn adc_scalar(tables: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(tables.len(), codes.len() * CODEBOOK);
    let mut acc = 0.0f32;
    for (s, &c) in codes.iter().enumerate() {
        acc += tables[s * CODEBOOK + c as usize];
    }
    acc
}

fn nearest_center(v: &[f32], book: &[f32], sub_dim: usize) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for c in 0..CODEBOOK {
        let d = squared_euclidean(v, &book[c * sub_dim..(c + 1) * sub_dim]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::knn_scan;
    use crate::synthetic::MixtureSpec;

    fn dataset() -> (Dataset, Dataset) {
        let spec = MixtureSpec {
            intrinsic_dim: Some(6),
            noise: 0.05,
            shared_subspace: true,
            ..MixtureSpec::table10(32, 1_500, 3, 5.0, 20)
        };
        spec.generate()
    }

    #[test]
    fn memory_is_far_smaller_than_raw() {
        let (ds, _) = dataset();
        let pq = PqDataset::train(&ds, 8, 800);
        // 8 bytes/point vs 128 bytes/point raw; codebooks amortize.
        assert!(pq.memory_bytes() < ds.memory_bytes() / 2);
    }

    #[test]
    fn table_distance_equals_decoded_distance() {
        let (ds, qs) = dataset();
        let pq = PqDataset::train(&ds, 8, 800);
        let q = qs.point(0);
        let t = pq.tables(q);
        for id in (0..ds.len() as u32).step_by(97) {
            let via_table = pq.dist_with(&t, id);
            let via_decode = squared_euclidean(q, &pq.decode(id));
            assert!(
                (via_table - via_decode).abs() / via_decode.max(1.0) < 1e-3,
                "id {id}: {via_table} vs {via_decode}"
            );
        }
    }

    #[test]
    fn pq_ranking_finds_true_neighbors_in_shortlist() {
        let (ds, qs) = dataset();
        let pq = PqDataset::train(&ds, 8, 800);
        let mut hit = 0usize;
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            let t = pq.tables(q);
            // PQ shortlist: top 50 by table distance.
            let mut scored: Vec<(f32, u32)> = (0..ds.len() as u32)
                .map(|id| (pq.dist_with(&t, id), id))
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            let shortlist: Vec<u32> = scored[..50].iter().map(|&(_, id)| id).collect();
            let truth = knn_scan(&ds, q, 1, None)[0].id;
            if shortlist.contains(&truth) {
                hit += 1;
            }
        }
        assert!(
            hit as f64 / qs.len() as f64 > 0.9,
            "true NN in PQ-50 shortlist only {hit}/{}",
            qs.len()
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_dim_is_rejected() {
        let (ds, _) = MixtureSpec::table10(10, 100, 1, 5.0, 2).generate();
        let _ = PqDataset::train(&ds, 3, 100);
    }
}
