//! Accuracy and difficulty metrics: `Recall@k`, speedup, and local
//! intrinsic dimensionality (LID).

use crate::dataset::Dataset;
use crate::ground_truth::knn_scan;

/// `Recall@k` for one query: |result ∩ truth| / |truth| (§2.1 and §5.1).
///
/// `truth` must hold the exact k ids; extra entries in `result` beyond
/// `truth.len()` are ignored, matching the paper's |R| = |T| convention.
pub fn recall(result: &[u32], truth: &[u32]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let hits = result
        .iter()
        .take(truth.len())
        .filter(|id| truth.contains(id))
        .count();
    hits as f64 / truth.len() as f64
}

/// Mean `Recall@k` over a query batch.
pub fn mean_recall(results: &[Vec<u32>], truths: &[Vec<u32>]) -> f64 {
    assert_eq!(results.len(), truths.len());
    if results.is_empty() {
        return 1.0;
    }
    results
        .iter()
        .zip(truths)
        .map(|(r, t)| recall(r, t))
        .sum::<f64>()
        / results.len() as f64
}

/// The paper's *speedup* metric: |S| / NDC, i.e. how many times fewer
/// distance computations a search needed than a linear scan.
pub fn speedup(dataset_size: usize, ndc: u64) -> f64 {
    if ndc == 0 {
        return f64::INFINITY;
    }
    dataset_size as f64 / ndc as f64
}

/// Maximum-likelihood LID estimate at one query point from its `k` nearest
/// neighbor distances (Amsaleg et al.; the estimator behind the paper's
/// Table 3 "LID" column):
///
/// `LID = - ( (1/k) Σ_i ln(r_i / r_k) )^-1`
///
/// `dists` must be the *true* (non-squared) neighbor distances in ascending
/// order. Returns `None` when the estimate is degenerate (all distances
/// equal or zero).
pub fn lid_mle(dists: &[f32]) -> Option<f64> {
    let k = dists.len();
    if k < 2 {
        return None;
    }
    let rk = *dists.last().unwrap() as f64;
    if rk <= 0.0 {
        return None;
    }
    let mut acc = 0.0f64;
    let mut used = 0usize;
    for &r in &dists[..k - 1] {
        let r = r as f64;
        if r > 0.0 {
            acc += (r / rk).ln();
            used += 1;
        }
    }
    if used == 0 || acc == 0.0 {
        return None;
    }
    Some(-(used as f64) / acc)
}

/// Mean MLE-LID of a dataset, estimated on `samples` random-stride points
/// with `k` neighbors each (the survey uses k = 100).
pub fn dataset_lid(base: &Dataset, k: usize, samples: usize, threads: usize) -> f64 {
    let n = base.len();
    let samples = samples.min(n).max(1);
    let stride = (n / samples).max(1);
    let ids: Vec<u32> = (0..samples).map(|i| (i * stride) as u32).collect();
    let mut lids: Vec<f64> = vec![0.0; ids.len()];
    let threads = threads.max(1).min(ids.len());
    let chunk = ids.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (slot, id_chunk) in lids.chunks_mut(chunk).zip(ids.chunks(chunk)) {
            s.spawn(move || {
                for (out, &id) in slot.iter_mut().zip(id_chunk) {
                    let nn = knn_scan(base, base.point(id), k, Some(id));
                    let dists: Vec<f32> = nn.iter().map(|x| x.dist.sqrt()).collect();
                    *out = lid_mle(&dists).unwrap_or(0.0);
                }
            });
        }
    });
    let valid: Vec<f64> = lids.into_iter().filter(|&x| x > 0.0).collect();
    if valid.is_empty() {
        return 0.0;
    }
    valid.iter().sum::<f64>() / valid.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::MixtureSpec;

    #[test]
    fn recall_counts_overlap() {
        assert_eq!(recall(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(recall(&[1, 9, 8], &[1, 2, 3]), 1.0 / 3.0);
        assert_eq!(recall(&[], &[1, 2]), 0.0);
    }

    #[test]
    fn recall_ignores_extra_results() {
        // |R| = |T| convention: only the first |T| results count.
        assert_eq!(recall(&[9, 8, 1, 2], &[1, 2]), 0.0);
    }

    #[test]
    fn mean_recall_averages() {
        let r = vec![vec![1u32], vec![9u32]];
        let t = vec![vec![1u32], vec![1u32]];
        assert_eq!(mean_recall(&r, &t), 0.5);
    }

    #[test]
    fn speedup_is_scan_over_ndc() {
        assert_eq!(speedup(1000, 10), 100.0);
        assert_eq!(speedup(1000, 0), f64::INFINITY);
    }

    #[test]
    fn lid_of_uniform_ball_tracks_dimension() {
        // Distances r_i = rk * (i/k)^(1/d) are the expected order statistics
        // of a d-dimensional uniform ball; the MLE should recover ~d.
        for d in [2.0f64, 8.0, 16.0] {
            let k = 200;
            let dists: Vec<f32> = (1..=k)
                .map(|i| ((i as f64 / k as f64).powf(1.0 / d)) as f32)
                .collect();
            let est = lid_mle(&dists).unwrap();
            assert!((est - d).abs() / d < 0.15, "d={d} est={est}");
        }
    }

    #[test]
    fn lid_mle_handles_degenerate_input() {
        assert!(lid_mle(&[1.0]).is_none());
        assert!(lid_mle(&[0.0, 0.0]).is_none());
        assert!(lid_mle(&[1.0, 1.0, 1.0]).is_none());
    }

    #[test]
    fn subspace_clusters_lower_measured_lid() {
        // Same ambient dimension, different intrinsic dimension: the
        // measured LID must rank accordingly (this is the property the
        // real-world stand-ins rely on).
        let lo = MixtureSpec {
            intrinsic_dim: Some(4),
            noise: 0.01,
            ..MixtureSpec::table10(32, 2_000, 4, 5.0, 10)
        };
        let hi = MixtureSpec {
            intrinsic_dim: Some(24),
            noise: 0.01,
            ..MixtureSpec::table10(32, 2_000, 4, 5.0, 10)
        };
        let (lo_ds, _) = lo.generate();
        let (hi_ds, _) = hi.generate();
        let lid_lo = dataset_lid(&lo_ds, 50, 100, 4);
        let lid_hi = dataset_lid(&hi_ds, 50, 100, 4);
        assert!(
            lid_lo < lid_hi,
            "expected intrinsic-4 LID ({lid_lo:.2}) < intrinsic-24 LID ({lid_hi:.2})"
        );
    }
}
