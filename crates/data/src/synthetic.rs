//! Seeded synthetic dataset generators.
//!
//! Two families:
//!
//! 1. **Table 10 generators** — the paper's 12 synthetic datasets are
//!    Gaussian mixtures parameterized by dimension, cardinality, number of
//!    clusters, and the per-cluster standard deviation. [`MixtureSpec`]
//!    reproduces them directly.
//! 2. **Real-world stand-ins** — the evaluation machines here have no access
//!    to SIFT1M/GIST1M/etc., so [`standins`] provides eight named generators
//!    with each dataset's true dimensionality and a *controlled intrinsic
//!    dimension*: every cluster lives on a random linear subspace of
//!    dimension ≈ the paper's reported LID (Table 3), plus small ambient
//!    noise. Measured MLE-LID then ranks the stand-ins the same way the
//!    paper ranks the real datasets (audio easiest … glove hardest), which
//!    is the property the paper's "simple vs hard dataset" findings rely on.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a Gaussian-mixture dataset.
///
/// ```
/// use weavess_data::synthetic::MixtureSpec;
///
/// let (base, queries) = MixtureSpec::table10(16, 1_000, 4, 5.0, 50).generate();
/// assert_eq!((base.len(), base.dim()), (1_000, 16));
/// assert_eq!(queries.len(), 50);
/// // Same spec, same data; new seed, new data.
/// let (again, _) = MixtureSpec::table10(16, 1_000, 4, 5.0, 50).generate();
/// assert_eq!(base, again);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureSpec {
    /// Ambient vector dimensionality.
    pub dim: usize,
    /// Number of base points.
    pub n: usize,
    /// Number of query points (drawn from the same mixture, disjoint draws).
    pub n_queries: usize,
    /// Number of mixture components.
    pub clusters: usize,
    /// Per-cluster standard deviation (the paper's "SD" column).
    pub std: f32,
    /// When set, each cluster is generated on a random `intrinsic_dim`-
    /// dimensional linear subspace (plus [`Self::noise`] ambient jitter),
    /// pinning the local intrinsic dimensionality. `None` = full-dimension
    /// isotropic Gaussian, matching the paper's Table 10 datasets.
    pub intrinsic_dim: Option<usize>,
    /// Ambient isotropic noise added on top of subspace clusters.
    pub noise: f32,
    /// With `intrinsic_dim` set: place every cluster on ONE shared
    /// subspace, with latent centers close enough that cluster tails
    /// overlap. Real feature embeddings are fuzzy multi-modal manifolds,
    /// not disjoint islands; without this, widely separated random
    /// subspaces put an artificial recall ceiling on every single-entry
    /// algorithm. The real-world stand-ins set this; the paper's Table 10
    /// synthetics do not.
    pub shared_subspace: bool,
    /// RNG seed; equal specs generate equal datasets.
    pub seed: u64,
}

impl MixtureSpec {
    /// A full-dimension mixture in the paper's Table 10 style.
    pub fn table10(dim: usize, n: usize, clusters: usize, std: f32, n_queries: usize) -> Self {
        MixtureSpec {
            dim,
            n,
            n_queries,
            clusters,
            std,
            intrinsic_dim: None,
            noise: 0.0,
            shared_subspace: false,
            seed: 0x5EED_0001,
        }
    }

    /// Overrides the seed (Appendix Q reruns randomized builds with
    /// different seeds; dataset seeds vary the same way).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates `(base, queries)` datasets.
    pub fn generate(&self) -> (Dataset, Dataset) {
        assert!(self.clusters >= 1, "need at least one cluster");
        assert!(self.n > 0 && self.dim > 0);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Cluster centers uniform in [0, 100]^dim: well separated relative
        // to typical SD values (1..10), like the paper's setup where more
        // clusters / larger SD make the dataset harder.
        let centers: Vec<Vec<f32>> = (0..self.clusters)
            .map(|_| (0..self.dim).map(|_| rng.gen_range(0.0..100.0)).collect())
            .collect();

        // Optional subspace bases (dim x m), orthonormalized: one per
        // cluster, or a single shared one (see `shared_subspace`).
        let bases: Option<Vec<Vec<f32>>> = self.intrinsic_dim.map(|m| {
            assert!(m >= 1 && m <= self.dim, "intrinsic_dim must be in 1..=dim");
            if self.shared_subspace {
                vec![random_orthonormal_basis(self.dim, m, &mut rng)]
            } else {
                (0..self.clusters)
                    .map(|_| random_orthonormal_basis(self.dim, m, &mut rng))
                    .collect()
            }
        });
        // Shared-subspace latent cluster centers: spread ~6 sigma keeps
        // modes distinct while tails overlap (fuzzy, navigable manifold).
        let latent_centers: Option<Vec<Vec<f32>>> = if self.shared_subspace {
            self.intrinsic_dim.map(|m| {
                let spread = self.std * 6.0;
                (0..self.clusters)
                    .map(|_| (0..m).map(|_| rng.gen_range(0.0..spread)).collect())
                    .collect()
            })
        } else {
            None
        };

        let gen_points = |count: usize, rng: &mut StdRng| -> Vec<f32> {
            let mut data = Vec::with_capacity(count * self.dim);
            for i in 0..count {
                // Deterministic round-robin cluster assignment keeps cluster
                // sizes balanced, as in the paper's balanced mixtures.
                let c = i % self.clusters;
                let center = &centers[c];
                match &bases {
                    None => {
                        for &cd in center {
                            data.push(cd + gaussian(rng) * self.std);
                        }
                    }
                    Some(bs) => {
                        let m = self.intrinsic_dim.unwrap();
                        let (basis, z): (&Vec<f32>, Vec<f32>) = match &latent_centers {
                            // Shared subspace: latent = cluster center + noise.
                            Some(lc) => (
                                &bs[0],
                                (0..m)
                                    .map(|j| lc[c][j] + gaussian(rng) * self.std)
                                    .collect(),
                            ),
                            // Per-cluster subspace around the ambient center.
                            None => (&bs[c], (0..m).map(|_| gaussian(rng) * self.std).collect()),
                        };
                        // Shared subspace ignores the ambient centers: the
                        // whole manifold hangs off one global offset.
                        let global = 50.0f32;
                        for d in 0..self.dim {
                            let mut x = if latent_centers.is_some() {
                                global
                            } else {
                                center[d]
                            };
                            for (j, &zj) in z.iter().enumerate() {
                                x += basis[j * self.dim + d] * zj;
                            }
                            if self.noise > 0.0 {
                                x += gaussian(rng) * self.noise;
                            }
                            data.push(x);
                        }
                    }
                }
            }
            data
        };

        let base = gen_points(self.n, &mut rng);
        let queries = gen_points(self.n_queries, &mut rng);
        (
            Dataset::from_flat(base, self.n, self.dim),
            Dataset::from_flat(queries, self.n_queries, self.dim),
        )
    }
}

/// Standard-normal sample via Box-Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Random `m`-dimensional orthonormal basis in `R^dim`, rows concatenated
/// (`m * dim` floats), produced by Gram-Schmidt on Gaussian vectors.
fn random_orthonormal_basis(dim: usize, m: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut basis = vec![0.0f32; m * dim];
    for j in 0..m {
        // Draw, then orthogonalize against previous rows.
        let mut v: Vec<f32> = (0..dim).map(|_| gaussian(rng)).collect();
        for prev in 0..j {
            let row = &basis[prev * dim..(prev + 1) * dim];
            let proj: f32 = v.iter().zip(row).map(|(a, b)| a * b).sum();
            for d in 0..dim {
                v[d] -= proj * row[d];
            }
        }
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
        for d in 0..dim {
            basis[j * dim + d] = v[d] / norm;
        }
    }
    basis
}

/// The paper's 12 synthetic datasets (Table 10), scaled by `scale`
/// (`scale = 1.0` reproduces the paper's cardinalities).
pub fn table10_specs(scale: f64) -> Vec<(&'static str, MixtureSpec)> {
    let n = |base: usize| ((base as f64 * scale) as usize).max(1000);
    let q = |base: usize| ((base as f64 * scale) as usize).max(100);
    vec![
        (
            "d_8",
            MixtureSpec::table10(8, n(100_000), 10, 5.0, q(1_000)),
        ),
        (
            "d_32",
            MixtureSpec::table10(32, n(100_000), 10, 5.0, q(1_000)),
        ),
        (
            "d_128",
            MixtureSpec::table10(128, n(100_000), 10, 5.0, q(1_000)),
        ),
        (
            "n_10000",
            MixtureSpec::table10(32, n(10_000), 10, 5.0, q(100)),
        ),
        (
            "n_100000",
            MixtureSpec::table10(32, n(100_000), 10, 5.0, q(1_000)),
        ),
        (
            "n_1000000",
            MixtureSpec::table10(32, n(1_000_000), 10, 5.0, q(10_000)),
        ),
        (
            "c_1",
            MixtureSpec::table10(32, n(100_000), 1, 5.0, q(1_000)),
        ),
        (
            "c_10",
            MixtureSpec::table10(32, n(100_000), 10, 5.0, q(1_000)),
        ),
        (
            "c_100",
            MixtureSpec::table10(32, n(100_000), 100, 5.0, q(1_000)),
        ),
        (
            "s_1",
            MixtureSpec::table10(32, n(100_000), 10, 1.0, q(1_000)),
        ),
        (
            "s_5",
            MixtureSpec::table10(32, n(100_000), 10, 5.0, q(1_000)),
        ),
        (
            "s_10",
            MixtureSpec::table10(32, n(100_000), 10, 10.0, q(1_000)),
        ),
    ]
}

/// Stand-ins for the paper's eight real-world datasets (Table 3).
///
/// Dimensions are the real ones; intrinsic dimension tracks the paper's LID
/// column so difficulty *ranks* the same; cardinality is the real count
/// scaled by `scale` (the evaluation here is laptop-scale).
pub mod standins {
    use super::MixtureSpec;

    /// One stand-in: paper-reported stats plus the generator.
    pub struct StandIn {
        /// Dataset name as used in the paper.
        pub name: &'static str,
        /// LID reported in Table 3 (target for the generator).
        pub paper_lid: f32,
        /// Generator specification.
        pub spec: MixtureSpec,
    }

    fn spec(
        dim: usize,
        real_n: usize,
        scale: f64,
        clusters: usize,
        intrinsic: usize,
        seed: u64,
    ) -> MixtureSpec {
        let n = ((real_n as f64 * scale) as usize).clamp(2_000, real_n);
        // Local structure (and hence measured LID) needs clusters that are
        // large relative to the k-NN neighborhoods; cap the cluster count
        // so each keeps at least ~500 points at reduced scales.
        let clusters = clusters.min((n / 500).max(2));
        MixtureSpec {
            dim,
            n,
            n_queries: (n / 100).clamp(100, 10_000),
            clusters,
            std: 5.0,
            intrinsic_dim: Some(intrinsic.min(dim)),
            noise: 0.05,
            shared_subspace: true,
            seed,
        }
    }

    /// All eight stand-ins at a given cardinality scale.
    pub fn all(scale: f64) -> Vec<StandIn> {
        vec![
            StandIn {
                name: "UQ-V",
                paper_lid: 7.2,
                spec: spec(256, 1_000_000, scale, 20, 7, 0xD5_0001),
            },
            StandIn {
                name: "Msong",
                paper_lid: 9.5,
                spec: spec(420, 992_272, scale, 15, 9, 0xD5_0002),
            },
            StandIn {
                name: "Audio",
                paper_lid: 5.6,
                spec: spec(192, 53_387, scale, 10, 5, 0xD5_0003),
            },
            StandIn {
                name: "SIFT1M",
                paper_lid: 9.3,
                spec: spec(128, 1_000_000, scale, 25, 9, 0xD5_0004),
            },
            StandIn {
                name: "GIST1M",
                paper_lid: 18.9,
                spec: spec(960, 1_000_000, scale, 30, 19, 0xD5_0005),
            },
            StandIn {
                name: "Crawl",
                paper_lid: 15.7,
                spec: spec(300, 1_989_995, scale, 40, 16, 0xD5_0006),
            },
            StandIn {
                name: "GloVe",
                paper_lid: 20.0,
                spec: spec(100, 1_183_514, scale, 50, 20, 0xD5_0007),
            },
            StandIn {
                name: "Enron",
                paper_lid: 11.7,
                spec: spec(1_369, 94_987, scale, 15, 12, 0xD5_0008),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = MixtureSpec::table10(8, 200, 4, 2.0, 10);
        let (a, _) = s.generate();
        let (b, _) = s.clone().generate();
        assert_eq!(a, b);
        let (c, _) = s.with_seed(99).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_match_spec() {
        let s = MixtureSpec::table10(16, 500, 5, 3.0, 40);
        let (base, queries) = s.generate();
        assert_eq!(base.len(), 500);
        assert_eq!(base.dim(), 16);
        assert_eq!(queries.len(), 40);
        assert_eq!(queries.dim(), 16);
    }

    #[test]
    fn clusters_are_separated() {
        // With std=1 and centers in [0,100]^8, same-cluster points are far
        // closer than the typical inter-center distance.
        let s = MixtureSpec::table10(8, 400, 4, 1.0, 10);
        let (base, _) = s.generate();
        // Points i and i+4 share a cluster under round-robin assignment.
        let same = base.dist(0, 4);
        let cross = base.dist(0, 1);
        assert!(same < cross, "same={same} cross={cross}");
    }

    #[test]
    fn orthonormal_basis_is_orthonormal() {
        let mut rng = StdRng::seed_from_u64(7);
        let dim = 24;
        let m = 6;
        let b = random_orthonormal_basis(dim, m, &mut rng);
        for i in 0..m {
            for j in 0..m {
                let dot: f32 = (0..dim).map(|d| b[i * dim + d] * b[j * dim + d]).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-4, "({i},{j}) dot={dot}");
            }
        }
    }

    #[test]
    fn table10_has_twelve_datasets() {
        let specs = table10_specs(0.01);
        assert_eq!(specs.len(), 12);
        assert!(specs.iter().any(|(n, _)| *n == "c_100"));
    }

    #[test]
    fn standins_cover_all_eight() {
        let s = standins::all(0.01);
        assert_eq!(s.len(), 8);
        let gist = s.iter().find(|x| x.name == "GIST1M").unwrap();
        assert_eq!(gist.spec.dim, 960);
    }
}
