//! Software prefetch for the memory-bound routing hot path.
//!
//! PR 2 made the distance arithmetic ~2× faster, which moved the search
//! bottleneck to the two dependent cache misses every expansion pays —
//! the neighbor list, then each neighbor's vector — before any arithmetic
//! starts. These helpers let the routers overlap those misses with useful
//! work by requesting lines a few iterations ahead.
//!
//! Prefetching is a pure hardware hint: it never changes what is read or
//! computed, so results, NDC, and hops are bit-identical with it on or
//! off. It is therefore toggled at *runtime* (a relaxed atomic read per
//! search call, not per line) so one binary can A/B it — `layout_bench`
//! sweeps both states into `BENCH_layout.json`.
//!
//! On non-x86_64 targets the hint compiles to nothing.

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide prefetch switch. Default on: the hint is free when the
/// data is already cached and hides DRAM/L3 latency when it is not.
static PREFETCH: AtomicBool = AtomicBool::new(true);

/// Enables or disables all software prefetch hints (process-wide).
pub fn set_prefetch_enabled(on: bool) {
    PREFETCH.store(on, Ordering::Relaxed);
}

/// Current state of the prefetch switch. Hot paths read this once per
/// search call and branch on a local.
#[inline]
pub fn prefetch_enabled() -> bool {
    PREFETCH.load(Ordering::Relaxed)
}

/// Requests the cache line containing `p` (T0 hint: into all levels).
/// Safe to call with any address — prefetch never faults.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        // SAFETY: PREFETCHT0 is a hint; it performs no access and cannot
        // fault even on invalid addresses.
        std::arch::x86_64::_mm_prefetch(p as *const i8, std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = p;
    }
}

/// Prefetches the first cache lines of an `len`-element `f32`-sized span
/// starting at `p`. Long vectors only need their head requested: the
/// hardware stride prefetcher follows once the first lines are touched.
#[inline(always)]
pub fn prefetch_span<T>(p: *const T, len: usize) {
    prefetch_read(p);
    if len * std::mem::size_of::<T>() > 64 {
        prefetch_read(unsafe { (p as *const u8).add(64) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_roundtrips() {
        let initial = prefetch_enabled();
        set_prefetch_enabled(false);
        assert!(!prefetch_enabled());
        set_prefetch_enabled(true);
        assert!(prefetch_enabled());
        set_prefetch_enabled(initial);
    }

    #[test]
    fn prefetch_accepts_any_address() {
        let v = [1.0f32; 32];
        prefetch_read(v.as_ptr());
        prefetch_span(v.as_ptr(), v.len());
        // Dangling/null addresses are fine too — prefetch never faults.
        prefetch_read(std::ptr::null::<f32>());
    }
}
