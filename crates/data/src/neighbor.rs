//! The `(id, distance)` pair used by every graph and search structure.

use std::cmp::Ordering;

/// A candidate neighbor: a point id plus its distance to some reference
/// point (a query or another base point).
///
/// Ordering is by distance first and id second, so sorting a slice of
/// `Neighbor`s yields a deterministic nearest-first order even under
/// distance ties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the point in its [`crate::Dataset`].
    pub id: u32,
    /// Distance to the reference point (squared Euclidean throughout this
    /// workspace; monotone in true Euclidean, so orderings agree).
    pub dist: f32,
}

impl Neighbor {
    /// Creates a neighbor record.
    #[inline]
    pub fn new(id: u32, dist: f32) -> Self {
        Neighbor { id, dist }
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN distances never occur for finite inputs; total_cmp keeps the
        // ordering total anyway.
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Inserts `n` into a nearest-first sorted, capacity-bounded pool.
///
/// Returns the insertion position, or `None` when `n` was rejected (already
/// present, or farther than the current worst while the pool is full). This
/// is the primitive behind both NN-Descent's neighbor pools and the
/// best-first search candidate set of the paper's Algorithm 1.
pub fn insert_into_pool(pool: &mut Vec<Neighbor>, capacity: usize, n: Neighbor) -> Option<usize> {
    debug_assert!(capacity > 0);
    // Binary search on the full (dist, id) order keeps ties deterministic.
    let pos = pool.partition_point(|x| x < &n);
    // A true duplicate (same id, same distance — distances are a pure
    // function of the pair) lands exactly at `pos`.
    if pos < pool.len() && pool[pos] == n {
        return None;
    }
    if pos >= capacity {
        return None;
    }
    pool.insert(pos, n);
    pool.truncate(capacity);
    Some(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_distance_then_id() {
        let a = Neighbor::new(3, 1.0);
        let b = Neighbor::new(1, 2.0);
        let c = Neighbor::new(0, 1.0);
        let mut v = vec![a, b, c];
        v.sort();
        assert_eq!(v, vec![c, a, b]);
    }

    #[test]
    fn pool_insert_keeps_sorted_and_bounded() {
        let mut pool = Vec::new();
        for (id, d) in [(0u32, 5.0f32), (1, 3.0), (2, 4.0), (3, 1.0), (4, 2.0)] {
            insert_into_pool(&mut pool, 3, Neighbor::new(id, d));
        }
        assert_eq!(pool.len(), 3);
        assert_eq!(pool[0], Neighbor::new(3, 1.0));
        assert_eq!(pool[1], Neighbor::new(4, 2.0));
        assert_eq!(pool[2], Neighbor::new(1, 3.0));
    }

    #[test]
    fn pool_rejects_duplicates() {
        let mut pool = Vec::new();
        assert!(insert_into_pool(&mut pool, 4, Neighbor::new(7, 1.5)).is_some());
        assert!(insert_into_pool(&mut pool, 4, Neighbor::new(7, 1.5)).is_none());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn pool_rejects_worse_than_worst_when_full() {
        let mut pool = vec![Neighbor::new(0, 1.0), Neighbor::new(1, 2.0)];
        assert!(insert_into_pool(&mut pool, 2, Neighbor::new(2, 3.0)).is_none());
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn pool_insert_reports_position() {
        let mut pool = vec![Neighbor::new(0, 1.0), Neighbor::new(1, 3.0)];
        let pos = insert_into_pool(&mut pool, 3, Neighbor::new(2, 2.0));
        assert_eq!(pos, Some(1));
    }
}
