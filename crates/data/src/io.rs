//! TexMex `fvecs` / `ivecs` file formats.
//!
//! The paper's real-world datasets (SIFT1M, GIST1M, …) ship in these
//! formats: each vector is a little-endian `i32` dimension followed by
//! `dim` little-endian values (`f32` for fvecs, `i32` for ivecs). The
//! evaluation here runs on synthetic stand-ins, but these loaders let the
//! real files drop in unchanged.

use crate::dataset::Dataset;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an `fvecs` file into a [`Dataset`].
pub fn read_fvecs(path: &Path) -> io::Result<Dataset> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut data = Vec::new();
    let mut dim = 0usize;
    let mut n = 0usize;
    loop {
        let mut head = [0u8; 4];
        match reader.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let d = i32::from_le_bytes(head);
        if d <= 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("non-positive vector dimension {d}"),
            ));
        }
        let d = d as usize;
        if n == 0 {
            dim = d;
        } else if d != dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("inconsistent dimensions: {dim} then {d}"),
            ));
        }
        let mut buf = vec![0u8; d * 4];
        reader.read_exact(&mut buf)?;
        data.extend(
            buf.chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        n += 1;
    }
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "empty fvecs file",
        ));
    }
    Ok(Dataset::from_flat(data, n, dim))
}

/// Writes a [`Dataset`] as `fvecs`.
pub fn write_fvecs(path: &Path, ds: &Dataset) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for i in 0..ds.len() as u32 {
        w.write_all(&(ds.dim() as i32).to_le_bytes())?;
        for &x in ds.point(i) {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads an `ivecs` file (typically ground-truth neighbor ids) into rows.
pub fn read_ivecs(path: &Path) -> io::Result<Vec<Vec<u32>>> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut rows = Vec::new();
    loop {
        let mut head = [0u8; 4];
        match reader.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let d = i32::from_le_bytes(head);
        if d < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("negative row length {d}"),
            ));
        }
        let mut buf = vec![0u8; d as usize * 4];
        reader.read_exact(&mut buf)?;
        rows.push(
            buf.chunks_exact(4)
                .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]) as u32)
                .collect(),
        );
    }
    Ok(rows)
}

/// Writes ground-truth rows as `ivecs`.
pub fn write_ivecs(path: &Path, rows: &[Vec<u32>]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for row in rows {
        w.write_all(&(row.len() as i32).to_le_bytes())?;
        for &x in row {
            w.write_all(&(x as i32).to_le_bytes())?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fvecs_roundtrip() {
        let ds = Dataset::from_rows(&[vec![1.0, 2.0, 3.0], vec![-4.5, 0.0, 9.75]]);
        let dir = std::env::temp_dir().join("weavess_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.fvecs");
        write_fvecs(&path, &ds).unwrap();
        let back = read_fvecs(&path).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn ivecs_roundtrip() {
        let rows = vec![vec![0u32, 5, 2], vec![9, 9, 9], vec![]];
        let dir = std::env::temp_dir().join("weavess_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ivecs");
        write_ivecs(&path, &rows).unwrap();
        assert_eq!(read_ivecs(&path).unwrap(), rows);
    }

    #[test]
    fn rejects_inconsistent_dimensions() {
        let dir = std::env::temp_dir().join("weavess_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.fvecs");
        let mut bytes = Vec::new();
        bytes.extend(1i32.to_le_bytes());
        bytes.extend(1.0f32.to_le_bytes());
        bytes.extend(2i32.to_le_bytes());
        bytes.extend(1.0f32.to_le_bytes());
        bytes.extend(2.0f32.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        assert!(read_fvecs(&path).is_err());
    }
}
