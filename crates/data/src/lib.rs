#![warn(missing_docs)]

//! Vector dataset substrate for the WEAVESS graph-ANNS reproduction.
//!
//! This crate owns everything the survey's evaluation layer needs *below* the
//! graph level:
//!
//! - [`Dataset`]: a flat, row-major `f32` matrix of base vectors.
//! - [`distance`]: Euclidean kernels in three tiers — survey-faithful
//!   scalar, autovectorizer-friendly unrolled, and explicit AVX2+FMA SIMD —
//!   dispatched at runtime through [`KernelTier`].
//! - [`Neighbor`]: the ubiquitous `(id, distance)` pair ordered by distance.
//! - [`synthetic`]: seeded Gaussian-mixture generators reproducing the
//!   paper's synthetic datasets (Table 10) and stand-ins for its eight
//!   real-world datasets (Table 3).
//! - [`io`]: TexMex `fvecs`/`ivecs` readers and writers so the real datasets
//!   drop in unchanged when available.
//! - [`ground_truth`]: parallel brute-force exact k-NN.
//! - [`metrics`]: `Recall@k`, local intrinsic dimensionality (LID), and the
//!   distance-computation counter that underlies the paper's *speedup*
//!   metric (`|S| / NDC`).

pub mod dataset;
pub mod distance;
pub mod ground_truth;
pub mod io;
pub mod metrics;
pub mod neighbor;
pub mod pq;
pub mod prefetch;
pub mod quant;
pub mod synthetic;
pub mod vectors;

pub use dataset::Dataset;
pub use distance::{host_features, KernelTier};
pub use neighbor::Neighbor;
pub use vectors::VectorView;
