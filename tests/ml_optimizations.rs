//! Integration: the §5.5 ML optimizations wrap base indexes through the
//! public API and reproduce the paper's qualitative trade-off — better
//! efficiency at the same recall, for extra preprocessing and memory.

use weavess::core::algorithms::nsg::{self, NsgParams};
use weavess::core::index::{AnnIndex, SearchContext};
use weavess::core::search::{SearchScratch, VisitedPool};
use weavess::data::ground_truth::ground_truth;
use weavess::data::metrics::recall;
use weavess::data::synthetic::MixtureSpec;
use weavess::data::Dataset;
use weavess::ml::{ml1, ml2, ml3};

fn dataset() -> (Dataset, Dataset) {
    MixtureSpec {
        intrinsic_dim: Some(8),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(48, 2_000, 4, 5.0, 60)
    }
    .generate()
}

#[test]
fn ml1_and_ml3_cut_effective_ndc_at_high_recall() {
    let (base, queries) = dataset();
    let gt = ground_truth(&base, &queries, 1, 2);
    let nsg_params = NsgParams::tuned(2, 1);
    let base_idx = nsg::build(&base, &nsg_params);
    let nq = queries.len() as f64;

    // Baseline NDC at beam 40.
    let mut ctx = SearchContext::new(base.len());
    let mut r_base = 0.0;
    for qi in 0..queries.len() as u32 {
        let res = base_idx.search(&base, queries.point(qi), 1, 40, &mut ctx);
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        r_base += recall(&ids, &gt[qi as usize][..1]);
    }
    let base_ndc = ctx.stats.ndc as f64 / nq;

    // ML1.
    let m1 = ml1::optimize(&base, base_idx.graph.clone(), vec![base.medoid()], 12);
    let mut scratch = SearchScratch::new(base.len());
    let (mut r1, mut eff1) = (0.0, 0.0);
    for qi in 0..queries.len() as u32 {
        let (res, s) = m1.search(&base, queries.point(qi), 1, 40, &mut scratch);
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        r1 += recall(&ids, &gt[qi as usize][..1]);
        eff1 += s.effective_ndc(12, base.dim());
    }
    assert!(eff1 / nq < base_ndc, "ml1 {} !< {}", eff1 / nq, base_ndc);
    assert!(r1 / nq > r_base / nq - 0.1);
    assert!(m1.extra_memory_bytes() > 0);

    // ML3.
    let m3 = ml3::optimize(&base, 12, &nsg_params);
    let (mut mctx, _) = m3.context();
    let (mut r3, mut eff3) = (0.0, 0.0);
    for qi in 0..queries.len() as u32 {
        let (res, re, fe) = m3.search(&base, queries.point(qi), 1, 40, &mut mctx);
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        r3 += recall(&ids, &gt[qi as usize][..1]);
        eff3 += fe as f64 + re as f64 * 12.0 / base.dim() as f64;
    }
    assert!(eff3 / nq < base_ndc, "ml3 {} !< {}", eff3 / nq, base_ndc);
    assert!(r3 / nq > r_base / nq - 0.1);
}

#[test]
fn ml2_terminates_early_without_collapsing_recall() {
    let (base, queries) = dataset();
    let gt = ground_truth(&base, &queries, 1, 2);
    let base_idx = nsg::build(&base, &NsgParams::tuned(2, 1));
    let half = queries.len() / 2;
    let train = queries.subset(&(0..half as u32).collect::<Vec<_>>());
    let m2 = ml2::optimize(
        &base,
        base_idx.graph.clone(),
        vec![base.medoid()],
        &train,
        &ml2::Ml2Params::default(),
    );

    let mut ctx = SearchContext::new(base.len());
    let mut visited = VisitedPool::new(base.len());
    let eval: Vec<u32> = (half as u32..queries.len() as u32).collect();
    let (mut r_base, mut r_ml2) = (0.0, 0.0);
    let mut ndc_ml2 = 0u64;
    for &qi in &eval {
        let res = base_idx.search(&base, queries.point(qi), 1, 60, &mut ctx);
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        r_base += recall(&ids, &gt[qi as usize][..1]);
        let (res2, ndc, _) = m2.search(&base, queries.point(qi), 1, 60, &mut visited);
        let ids2: Vec<u32> = res2.iter().map(|n| n.id).collect();
        r_ml2 += recall(&ids2, &gt[qi as usize][..1]);
        ndc_ml2 += ndc;
    }
    assert!(
        ndc_ml2 < ctx.stats.ndc,
        "ml2 {ndc_ml2} !< base {}",
        ctx.stats.ndc
    );
    let n = eval.len() as f64;
    assert!(r_ml2 / n > r_base / n - 0.2, "{r_ml2} vs {r_base}");
}
