//! Edge-case robustness: degenerate datasets and extreme parameters must
//! not panic, and results must stay well-formed.

use weavess::core::algorithms::Algo;
use weavess::core::index::SearchContext;
use weavess::data::synthetic::MixtureSpec;
use weavess::data::Dataset;

fn tiny() -> Dataset {
    Dataset::from_rows(&[
        vec![0.0, 0.0],
        vec![1.0, 0.0],
        vec![0.0, 1.0],
        vec![5.0, 5.0],
        vec![5.0, 6.0],
    ])
}

#[test]
fn every_algorithm_survives_a_five_point_dataset() {
    let ds = tiny();
    for &algo in Algo::all() {
        let index = algo.build(&ds, 1, 1);
        let mut ctx = SearchContext::new(ds.len());
        let res = index.search(&ds, &[0.5, 0.5], 3, 10, &mut ctx);
        assert!(!res.is_empty(), "{} returned nothing", algo.name());
        assert!(res.len() <= 3);
        assert!(
            res.windows(2).all(|w| w[0].dist <= w[1].dist),
            "{} unsorted",
            algo.name()
        );
    }
}

#[test]
fn every_algorithm_survives_duplicate_points() {
    // 60 identical vectors: zero distances everywhere.
    let ds = Dataset::from_rows(&vec![vec![2.5f32, -1.0, 3.0]; 60]);
    for &algo in Algo::all() {
        let index = algo.build(&ds, 1, 1);
        let mut ctx = SearchContext::new(ds.len());
        let res = index.search(&ds, &[2.5, -1.0, 3.0], 5, 20, &mut ctx);
        assert!(!res.is_empty(), "{} returned nothing", algo.name());
        assert!(res.iter().all(|n| n.dist == 0.0), "{}", algo.name());
    }
}

#[test]
fn k_larger_than_dataset_is_clamped_gracefully() {
    let ds = tiny();
    let index = Algo::Hnsw.build(&ds, 1, 1);
    let mut ctx = SearchContext::new(ds.len());
    let res = index.search(&ds, &[0.0, 0.0], 50, 100, &mut ctx);
    assert!(res.len() <= ds.len());
    // All five points found.
    assert_eq!(res.len(), 5);
}

#[test]
fn beam_of_one_still_returns_results() {
    let (ds, qs) = MixtureSpec::table10(8, 300, 2, 5.0, 5).generate();
    for algo in [Algo::KGraph, Algo::Nsg, Algo::Hnsw] {
        let index = algo.build(&ds, 1, 1);
        let mut ctx = SearchContext::new(ds.len());
        let res = index.search(&ds, qs.point(0), 1, 1, &mut ctx);
        assert_eq!(res.len(), 1, "{}", algo.name());
    }
}

#[test]
fn query_identical_to_base_point_finds_it() {
    let (ds, _) = MixtureSpec::table10(8, 400, 2, 5.0, 5).generate();
    for algo in [Algo::Nsg, Algo::Hnsw, Algo::Dpg, Algo::Oa] {
        let index = algo.build(&ds, 1, 1);
        let mut ctx = SearchContext::new(ds.len());
        let mut found = 0;
        for probe in [0u32, 137, 333] {
            let res = index.search(&ds, ds.point(probe), 1, 40, &mut ctx);
            if res.first().map(|n| (n.id, n.dist)) == Some((probe, 0.0)) {
                found += 1;
            }
        }
        assert!(found >= 2, "{}: self-queries found {found}/3", algo.name());
    }
}

#[test]
fn one_dimensional_data_works() {
    let ds = Dataset::from_rows(&(0..100).map(|i| vec![i as f32]).collect::<Vec<_>>());
    let index = Algo::Nsg.build(&ds, 1, 1);
    let mut ctx = SearchContext::new(ds.len());
    let res = index.search(&ds, &[42.4], 3, 20, &mut ctx);
    assert_eq!(res[0].id, 42);
}

#[test]
fn extreme_coordinate_magnitudes_do_not_break_ordering() {
    let ds = Dataset::from_rows(&[
        vec![1.0e20, 0.0],
        vec![1.0e20, 1.0],
        vec![-1.0e20, 0.0],
        vec![0.0, 0.0],
    ]);
    let index = Algo::KGraph.build(&ds, 1, 1);
    let mut ctx = SearchContext::new(ds.len());
    let res = index.search(&ds, &[1.0e20, 0.5], 2, 10, &mut ctx);
    let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
    assert!(ids.contains(&0) && ids.contains(&1), "{ids:?}");
}
