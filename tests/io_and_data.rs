//! Integration: the dataset-file workflow — write a base/query/ground-truth
//! triple in the TexMex formats, read it back, build and search — exactly
//! what a user with real SIFT1M files would do.

use weavess::core::algorithms::Algo;
use weavess::core::index::SearchContext;
use weavess::data::ground_truth::ground_truth;
use weavess::data::io::{read_fvecs, read_ivecs, write_fvecs, write_ivecs};
use weavess::data::metrics::mean_recall;
use weavess::data::synthetic::MixtureSpec;

#[test]
fn fvecs_workflow_end_to_end() {
    let dir = std::env::temp_dir().join("weavess_it_io");
    std::fs::create_dir_all(&dir).unwrap();
    let (base, queries) = MixtureSpec {
        intrinsic_dim: Some(6),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(16, 1_000, 3, 5.0, 20)
    }
    .generate();
    let gt = ground_truth(&base, &queries, 10, 2);

    // Persist the triple.
    write_fvecs(&dir.join("base.fvecs"), &base).unwrap();
    write_fvecs(&dir.join("query.fvecs"), &queries).unwrap();
    write_ivecs(&dir.join("gt.ivecs"), &gt).unwrap();

    // Reload and verify bit-exactness.
    let base2 = read_fvecs(&dir.join("base.fvecs")).unwrap();
    let queries2 = read_fvecs(&dir.join("query.fvecs")).unwrap();
    let gt2 = read_ivecs(&dir.join("gt.ivecs")).unwrap();
    assert_eq!(base, base2);
    assert_eq!(queries, queries2);
    assert_eq!(gt, gt2);

    // Build + search from the reloaded data.
    let index = Algo::Hnsw.build(&base2, 2, 1);
    let mut ctx = SearchContext::new(base2.len());
    let results: Vec<Vec<u32>> = (0..queries2.len() as u32)
        .map(|qi| {
            index
                .search(&base2, queries2.point(qi), 10, 60, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();
    assert!(mean_recall(&results, &gt2) > 0.9);
}

#[test]
fn ground_truth_matches_between_runs_and_thread_counts() {
    let (base, queries) = MixtureSpec::table10(8, 500, 2, 4.0, 25).generate();
    let a = ground_truth(&base, &queries, 10, 1);
    let b = ground_truth(&base, &queries, 10, 3);
    assert_eq!(a, b);
}

#[test]
fn stand_in_difficulty_ranks_simple_below_hard() {
    // The substitution contract (DESIGN.md §5): SIFT-like must measure
    // easier than GIST-like, which must measure easier than GloVe-like.
    use weavess::data::metrics::dataset_lid;
    use weavess::data::synthetic::standins;
    let sets = standins::all(0.002);
    let lid_of = |name: &str| {
        let s = sets.iter().find(|s| s.name == name).unwrap();
        let (base, _) = s.spec.generate();
        dataset_lid(&base, 50, 100, 2)
    };
    let sift = lid_of("SIFT1M");
    let gist = lid_of("GIST1M");
    let glove = lid_of("GloVe");
    let audio = lid_of("Audio");
    assert!(audio < sift, "audio {audio} !< sift {sift}");
    assert!(sift < gist, "sift {sift} !< gist {gist}");
    assert!(gist < glove + 1.5, "gist {gist} vs glove {glove}");
}
