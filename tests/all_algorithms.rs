//! Integration: every surveyed algorithm builds a working index on a
//! realistic (shared-manifold) dataset and answers queries at a sane
//! recall, through the public facade API only.

use weavess::core::algorithms::Algo;
use weavess::core::index::SearchContext;
use weavess::data::ground_truth::ground_truth;
use weavess::data::metrics::mean_recall;
use weavess::data::synthetic::MixtureSpec;
use weavess::data::Dataset;

fn dataset() -> (Dataset, Dataset) {
    MixtureSpec {
        intrinsic_dim: Some(8),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(24, 1_500, 4, 5.0, 40)
    }
    .generate()
}

fn run(algo: Algo, base: &Dataset, queries: &Dataset, beam: usize) -> f64 {
    let index = algo.build(base, 2, 1);
    let gt = ground_truth(base, queries, 10, 2);
    let mut ctx = SearchContext::new(base.len());
    let results: Vec<Vec<u32>> = (0..queries.len() as u32)
        .map(|qi| {
            index
                .search(base, queries.point(qi), 10, beam, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();
    mean_recall(&results, &gt)
}

#[test]
fn every_algorithm_reaches_a_recall_floor() {
    let (base, queries) = dataset();
    for &algo in Algo::all() {
        let r = run(algo, &base, &queries, 80);
        // Weak uniform floor: every index must be functional. Stronger
        // per-algorithm floors live in each algorithm's unit tests.
        assert!(r > 0.6, "{} recall {r}", algo.name());
    }
}

#[test]
fn rng_based_algorithms_reach_high_recall() {
    let (base, queries) = dataset();
    for algo in [Algo::Hnsw, Algo::Nsg, Algo::Nssg, Algo::Dpg, Algo::Oa] {
        let r = run(algo, &base, &queries, 80);
        assert!(r > 0.9, "{} recall {r}", algo.name());
    }
}

#[test]
fn builds_are_deterministic_given_seed() {
    let (base, _) = dataset();
    for algo in [
        Algo::KGraph,
        Algo::Nsg,
        Algo::Nssg,
        Algo::Oa,
        Algo::Hcnng,
        Algo::Vamana,
    ] {
        let a = algo.build(&base, 1, 7);
        let b = algo.build(&base, 1, 7);
        assert_eq!(
            a.graph().to_lists(),
            b.graph().to_lists(),
            "{} not deterministic",
            algo.name()
        );
    }
}

#[test]
fn different_seeds_change_randomized_builds() {
    let (base, _) = dataset();
    let a = Algo::Vamana.build(&base, 1, 7);
    let b = Algo::Vamana.build(&base, 1, 8);
    assert_ne!(a.graph().to_lists(), b.graph().to_lists());
}

#[test]
fn search_stats_accumulate_across_queries() {
    let (base, queries) = dataset();
    let index = Algo::Hnsw.build(&base, 2, 1);
    let mut ctx = SearchContext::new(base.len());
    index.search(&base, queries.point(0), 10, 40, &mut ctx);
    let after_one = ctx.stats;
    index.search(&base, queries.point(1), 10, 40, &mut ctx);
    assert!(ctx.stats.ndc > after_one.ndc);
    assert!(ctx.stats.hops >= after_one.hops);
}
