//! Integration: the `weavess` command-line binary, driven end to end
//! through the filesystem like a user would.

use std::path::{Path, PathBuf};
use std::process::Command;
use weavess::data::io::{read_ivecs, write_fvecs};
use weavess::data::synthetic::MixtureSpec;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_weavess"))
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("weavess_cli_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn prepare_files(dir: &Path) {
    let (base, queries) = MixtureSpec {
        intrinsic_dim: Some(6),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(16, 1_200, 3, 5.0, 30)
    }
    .generate();
    write_fvecs(&dir.join("base.fvecs"), &base).unwrap();
    write_fvecs(&dir.join("q.fvecs"), &queries).unwrap();
}

#[test]
fn full_cli_workflow() {
    let dir = workdir();
    prepare_files(&dir);
    let p = |name: &str| dir.join(name).to_str().unwrap().to_string();

    // gt
    let out = bin()
        .args(["gt", "--base", &p("base.fvecs"), "--queries", &p("q.fvecs")])
        .args(["--k", "20", "--out", &p("gt.ivecs")])
        .output()
        .expect("run gt");
    assert!(
        out.status.success(),
        "gt: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(read_ivecs(&dir.join("gt.ivecs")).unwrap().len(), 30);

    // build (persistable algorithm)
    let out = bin()
        .args(["build", "--algo", "NSG", "--base", &p("base.fvecs")])
        .args(["--out", &p("nsg.wvss"), "--threads", "2"])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "build: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // info
    let out = bin()
        .args(["info", "--index", &p("nsg.wvss")])
        .output()
        .expect("run info");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("algorithm : NSG"), "{stdout}");
    assert!(stdout.contains("vertices  : 1200"), "{stdout}");

    // search to file
    let out = bin()
        .args([
            "search",
            "--index",
            &p("nsg.wvss"),
            "--base",
            &p("base.fvecs"),
        ])
        .args(["--queries", &p("q.fvecs"), "--k", "10", "--beam", "60"])
        .args(["--out", &p("res.ivecs")])
        .output()
        .expect("run search");
    assert!(
        out.status.success(),
        "search: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let res = read_ivecs(&dir.join("res.ivecs")).unwrap();
    assert_eq!(res.len(), 30);
    assert!(res.iter().all(|r| r.len() == 10));

    // Results overlap heavily with the exact ground truth.
    let gt = read_ivecs(&dir.join("gt.ivecs")).unwrap();
    let mut hits = 0usize;
    for (r, t) in res.iter().zip(&gt) {
        hits += r.iter().filter(|id| t[..10].contains(id)).count();
    }
    assert!(hits as f64 / (10.0 * 30.0) > 0.85, "cli recall {hits}/300");

    // eval (works for any algorithm, including non-persistable ones)
    let out = bin()
        .args(["eval", "--algo", "HNSW", "--base", &p("base.fvecs")])
        .args([
            "--queries",
            &p("q.fvecs"),
            "--gt",
            &p("gt.ivecs"),
            "--k",
            "10",
        ])
        .output()
        .expect("run eval");
    assert!(
        out.status.success(),
        "eval: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("Recall@10"));
}

#[test]
fn cli_rejects_bad_input() {
    let dir = workdir();
    prepare_files(&dir);
    let p = |name: &str| dir.join(name).to_str().unwrap().to_string();

    // Unknown command.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    // Missing flag value.
    let out = bin().args(["build", "--algo"]).output().unwrap();
    assert!(!out.status.success());

    // Unknown algorithm.
    let out = bin()
        .args(["eval", "--algo", "NOPE", "--base", &p("base.fvecs")])
        .args(["--queries", &p("q.fvecs"), "--gt", &p("q.fvecs")])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));

    // Non-persistable algorithm through `build` explains itself.
    let out = bin()
        .args(["build", "--algo", "HNSW", "--base", &p("base.fvecs")])
        .args(["--out", &p("x.wvss")])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot be persisted"));
}
