//! Integration: the §5.4 unified pipeline — component swaps compose into
//! working indexes and reproduce the paper's qualitative component-study
//! findings at miniature scale.

use weavess::core::index::{AnnIndex, SearchContext};
use weavess::core::pipeline::{
    CandidateChoice, ConnectivityChoice, InitChoice, PipelineBuilder, SeedChoice, SelectionChoice,
};
use weavess::core::search::Router;
use weavess::data::ground_truth::ground_truth;
use weavess::data::metrics::mean_recall;
use weavess::data::synthetic::MixtureSpec;
use weavess::data::Dataset;
use weavess::graph::connectivity::weak_components;

fn dataset() -> (Dataset, Dataset) {
    MixtureSpec {
        intrinsic_dim: Some(8),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(24, 2_000, 4, 5.0, 50)
    }
    .generate()
}

fn recall_of(b: &PipelineBuilder, base: &Dataset, queries: &Dataset, beam: usize) -> f64 {
    let idx = b.build(base);
    let gt = ground_truth(base, queries, 10, 2);
    let mut ctx = SearchContext::new(base.len());
    let results: Vec<Vec<u32>> = (0..queries.len() as u32)
        .map(|qi| {
            idx.search(base, queries.point(qi), 10, beam, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();
    mean_recall(&results, &gt)
}

#[test]
fn c1_nn_descent_beats_random_init() {
    // Figure 10(a): C1_NSG (NN-Descent) >> C1_KGraph (random pools).
    let (base, queries) = dataset();
    let good = PipelineBuilder::benchmark(6, 2);
    let mut bad = PipelineBuilder::benchmark(6, 2);
    bad.init = InitChoice::Random { k: 40 };
    let r_good = recall_of(&good, &base, &queries, 40);
    let r_bad = recall_of(&bad, &base, &queries, 40);
    assert!(r_good > r_bad, "nn-descent {r_good} !> random {r_bad}");
}

#[test]
fn c3_distribution_aware_selection_beats_distance_only() {
    // Figure 10(c): RNG-rule selection beats closest-only at equal degree.
    let (base, queries) = dataset();
    let rng_rule = PipelineBuilder::benchmark(6, 2);
    let mut closest = PipelineBuilder::benchmark(6, 2);
    closest.selection = SelectionChoice::Closest { degree: 30 };
    // Compare NDC at similar recall by fixing the beam and comparing recall.
    let r_rng = recall_of(&rng_rule, &base, &queries, 30);
    let r_closest = recall_of(&closest, &base, &queries, 30);
    assert!(
        r_rng >= r_closest - 0.01,
        "rng-rule {r_rng} < closest {r_closest}"
    );
}

#[test]
fn c5_dfs_repair_connects_the_graph() {
    // Figure 10(e): connectivity assurance matters. Build on *separated*
    // clusters where repair is actually needed.
    let (base, _) = MixtureSpec::table10(16, 1_500, 5, 3.0, 30).generate();
    let mut without = PipelineBuilder::benchmark(6, 2);
    without.connectivity = ConnectivityChoice::None;
    let mut with = PipelineBuilder::benchmark(6, 2);
    with.connectivity = ConnectivityChoice::DfsRepair;
    let g_without = without.build(&base);
    let g_with = with.build(&base);
    assert!(weak_components(g_without.graph()) > 1);
    // DFS repair adds directed bridges; weak components must collapse.
    assert_eq!(weak_components(g_with.graph()), 1);
}

#[test]
fn c7_guided_search_saves_distance_computations() {
    // Figure 10(f): C7_HCNNG trades a little accuracy for fewer NDC.
    let (base, queries) = dataset();
    let best_first = PipelineBuilder::benchmark(6, 2);
    let mut guided = PipelineBuilder::benchmark(6, 2);
    guided.router = Router::Guided;
    let idx_bf = best_first.build(&base);
    let idx_g = guided.build(&base);
    let mut ctx_bf = SearchContext::new(base.len());
    let mut ctx_g = SearchContext::new(base.len());
    for qi in 0..queries.len() as u32 {
        idx_bf.search(&base, queries.point(qi), 10, 40, &mut ctx_bf);
        idx_g.search(&base, queries.point(qi), 10, 40, &mut ctx_g);
    }
    assert!(
        ctx_g.stats.ndc < ctx_bf.stats.ndc,
        "guided {} !< best-first {}",
        ctx_g.stats.ndc,
        ctx_bf.stats.ndc
    );
}

#[test]
fn all_seed_choices_produce_working_indexes() {
    let (base, queries) = dataset();
    let seeds = [
        SeedChoice::Random { count: 8 },
        SeedChoice::Medoid,
        SeedChoice::FixedRandom { count: 8 },
        SeedChoice::KdLeaf {
            n_trees: 2,
            count: 8,
        },
        SeedChoice::KdSearch {
            n_trees: 2,
            count: 8,
            checks_per_tree: 64,
        },
        SeedChoice::VpTree {
            count: 8,
            checks: 128,
        },
        SeedChoice::BkTree {
            count: 8,
            checks: 128,
        },
        SeedChoice::Lsh {
            tables: 2,
            bits: 10,
            count: 8,
        },
    ];
    for seed in seeds {
        let mut b = PipelineBuilder::benchmark(4, 2);
        let label = format!("{seed:?}");
        b.seeds = seed;
        let r = recall_of(&b, &base, &queries, 60);
        assert!(r > 0.7, "{label}: recall {r}");
    }
}

#[test]
fn all_candidate_choices_produce_working_indexes() {
    let (base, queries) = dataset();
    for cand in [
        CandidateChoice::Expansion { cap: 100 },
        CandidateChoice::Direct,
        CandidateChoice::Search { beam: 40, cap: 100 },
    ] {
        let mut b = PipelineBuilder::benchmark(4, 2);
        let label = format!("{cand:?}");
        b.candidates = cand;
        let r = recall_of(&b, &base, &queries, 60);
        assert!(r > 0.7, "{label}: recall {r}");
    }
}
