//! Integration: the Table 2/9 taxonomy metadata is consistent with the
//! built indexes' actual behavior.

use weavess::core::algorithms::Algo;
use weavess::data::synthetic::MixtureSpec;
use weavess::data::Dataset;

fn dataset() -> Dataset {
    MixtureSpec {
        intrinsic_dim: Some(6),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(16, 800, 3, 5.0, 10)
    }
    .generate()
    .0
}

#[test]
fn registry_covers_the_paper_plus_appendices() {
    assert_eq!(Algo::all().len(), 17);
    assert_eq!(Algo::core_thirteen().len(), 13);
    // Every core-13 entry is in the full registry.
    for a in Algo::core_thirteen() {
        assert!(Algo::all().contains(a));
    }
    // Names are unique.
    let mut names: Vec<&str> = Algo::all().iter().map(|a| a.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 17);
}

#[test]
fn undirected_algorithms_build_mostly_mutual_edges() {
    let ds = dataset();
    for &algo in Algo::all() {
        if algo.edge_type() != "undirected" {
            continue;
        }
        let index = algo.build(&ds, 1, 1);
        let g = index.graph();
        let mut mutual = 0usize;
        let mut total = 0usize;
        for v in 0..g.len() as u32 {
            for &u in g.neighbors(v) {
                total += 1;
                if g.neighbors(u).contains(&v) {
                    mutual += 1;
                }
            }
        }
        assert!(
            mutual as f64 / total as f64 > 0.75,
            "{}: only {mutual}/{total} mutual",
            algo.name()
        );
    }
}

#[test]
fn rng_approximating_algorithms_have_lower_degree_than_knng_ones() {
    // The Table 4 pattern: RNG pruning cuts the average out-degree well
    // below the pure-KNNG algorithms at comparable parameters.
    let ds = dataset();
    let deg = |algo: Algo| {
        let index = algo.build(&ds, 1, 1);
        weavess::graph::metrics::degree_stats(index.graph()).avg
    };
    let nsg = deg(Algo::Nsg);
    let kgraph = deg(Algo::KGraph);
    assert!(nsg < kgraph, "NSG {nsg} !< KGraph {kgraph}");
}

#[test]
fn increment_strategy_names_match_module_behavior() {
    // Spot-check the strategy labels against structural facts: increment
    // builders have no refinement passes and stay connected (NSW).
    assert_eq!(Algo::Nsw.construction_strategy(), "increment");
    assert_eq!(Algo::Hnsw.construction_strategy(), "increment");
    assert_eq!(Algo::Nsg.construction_strategy(), "refinement");
    assert_eq!(Algo::Hcnng.construction_strategy(), "divide-and-conquer");
    let ds = dataset();
    let nsw = Algo::Nsw.build(&ds, 1, 1);
    assert_eq!(
        weavess::graph::connectivity::weak_components(nsw.graph()),
        1,
        "increment strategy must keep NSW connected"
    );
}

#[test]
fn base_graph_labels_are_from_the_four_classics() {
    for &algo in Algo::all() {
        for part in algo.base_graph().split('+') {
            assert!(
                ["KNNG", "RNG", "DG", "MST"].contains(&part),
                "{}: unexpected base graph '{part}'",
                algo.name()
            );
        }
    }
}
