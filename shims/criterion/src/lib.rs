#![warn(missing_docs)]

//! Offline stand-in for the subset of `criterion` this workspace uses:
//! [`Criterion::bench_function`] with [`Bencher::iter`], the
//! [`criterion_group!`] / [`criterion_main!`] macros, and [`black_box`].
//!
//! Measurement is intentionally simple — a timed pilot sizes a batch that
//! fits the configured measurement time, then mean ns/iter is reported —
//! because the workspace uses these benches as smoke tests and coarse
//! regression signals, not as a statistics engine. `--test` (what CI
//! passes) runs each benchmark once and skips measurement.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some(ns) if !self.test_mode => {
                println!("{name:<40} {:>12.1} ns/iter", ns);
            }
            _ => println!("{name:<40} ok (test mode)"),
        }
        self
    }
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    report: Option<f64>,
}

impl Bencher {
    /// Benchmarks `routine`, storing mean ns/iter for the caller's report.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Pilot: size the batch so one sample costs roughly
        // measurement_time / sample_size.
        let t0 = Instant::now();
        black_box(routine());
        let pilot = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time / (self.sample_size as u32);
        let batch = (per_sample.as_nanos() / pilot.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t.elapsed();
            iters += batch as u64;
            if total > self.measurement_time {
                break;
            }
        }
        self.report = Some(total.as_nanos() as f64 / iters as f64);
    }
}

/// Declares a benchmark group (subset of upstream `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main` (subset of upstream
/// `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn bench_function_runs_the_routine() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        sample_bench(&mut c);
    }

    criterion_group! {
        name = group_with_config;
        config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(2));
        targets = sample_bench
    }

    criterion_group!(plain_group, sample_bench);

    #[test]
    fn groups_are_callable() {
        group_with_config();
        plain_group();
    }
}
