#![warn(missing_docs)]

//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest! { #[test] fn name(arg in strategy, ..) { .. } }`
//! macro with an optional `#![proptest_config(..)]` header, range
//! strategies over the primitive numeric types, tuple strategies,
//! `prop::collection::{vec, hash_set}`, `prop::bool::ANY`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: inputs are drawn from a generator seeded
//! deterministically per test name (every run replays the same cases),
//! and failing cases are reported without shrinking. Both trade-offs are
//! acceptable here — the workspace uses property tests as randomized
//! coverage with reproducible failures, not as minimal-counterexample
//! tooling.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier algorithmic
        // properties in this workspace fast while still exercising a
        // spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's inputs were rejected by `prop_assume!`; it does not
    /// count toward the case budget.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// The deterministic input generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from the test's name, so each named test
    /// replays an identical input sequence on every run.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Uniform sample from a half-open range.
    pub fn sample<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        self.0.gen_range(range)
    }

    /// A uniformly random bool.
    pub fn sample_bool(&mut self) -> bool {
        self.0.gen::<bool>()
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.sample(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Always produces a clone of the given value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy namespace (subset of `proptest::prop`-style paths).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The any-bool strategy instance.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.sample_bool()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use std::collections::HashSet;
        use std::hash::Hash;

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of `element` values with a length in `size`
        /// (a `usize` for an exact length, or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `HashSet<S::Value>` with cardinality drawn from
        /// `size`.
        #[derive(Debug, Clone)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates hash sets of `element` values with a cardinality in
        /// `size`. If the element domain is too small to reach the drawn
        /// cardinality, the set is returned at the size achieved after a
        /// bounded number of draws.
        pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let want = self.size.pick(rng);
                let mut out = HashSet::with_capacity(want);
                let mut attempts = 0usize;
                while out.len() < want && attempts < want * 100 + 100 {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }
}

/// A collection-size specification: an exact length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.sample(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

/// Runs one property test: draws inputs, applies the case closure, and
/// panics with the failing input's debug rendering on the first failure.
/// Called by the [`proptest!`] macro expansion; not public API upstream.
pub fn run_property<V: std::fmt::Debug>(
    name: &str,
    config: &ProptestConfig,
    strategy: &impl Strategy<Value = V>,
    mut case: impl FnMut(V) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::deterministic(name);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(100);
    while passed < config.cases {
        if attempts >= max_attempts {
            panic!(
                "proptest '{name}': gave up after {attempts} attempts \
                 ({passed}/{} cases passed; too many prop_assume! rejections)",
                config.cases
            );
        }
        attempts += 1;
        // Render inputs before the move so failures can print them.
        let value = strategy.generate(&mut rng);
        let rendered = format!("{value:?}");
        match case(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {attempts}: {msg}\n    input: {rendered}")
            }
        }
    }
}

/// The property-test entry macro (subset of upstream `proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::run_property(
                    stringify!($name),
                    &config,
                    &strategy,
                    |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                        { $body }
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Boolean assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Input filter: rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything the tests import (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_bounded(x in 3u32..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_honor_size(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn exact_vec_length(v in prop::collection::vec(0u32..100, 4usize)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn hash_sets_reach_their_size(s in prop::collection::hash_set((0i32..50, 0i32..50), 2..10)) {
            prop_assert!(s.len() >= 2 && s.len() < 10);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn bools_vary(v in prop::collection::vec(prop::bool::ANY, 64usize)) {
            // 64 fair coin flips are all-equal with probability 2^-63.
            prop_assert!(v.iter().any(|&b| b) && v.iter().any(|&b| !b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_is_accepted(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn deterministic_rng_replays() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(a.sample(0u64..1000), b.sample(0u64..1000));
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'failing' failed")]
    fn failures_panic_with_input() {
        crate::run_property(
            "failing",
            &ProptestConfig::with_cases(5),
            &(0u32..10,),
            |(_x,)| Err(TestCaseError::Fail("boom".into())),
        );
    }
}
