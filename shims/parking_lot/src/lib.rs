#![warn(missing_docs)]

//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! [`Mutex`] and [`RwLock`] with panic-free, guard-returning lock methods.
//!
//! Backed by `std::sync` primitives; poisoning is deliberately ignored
//! (matching parking_lot semantics) by recovering the inner guard when a
//! previous holder panicked.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
