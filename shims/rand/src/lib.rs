#![warn(missing_docs)]

//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible implementation of exactly the
//! surface the code calls: [`rngs::StdRng`] (seedable, deterministic),
//! the [`Rng`] extension methods `gen_range` / `gen` / `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded
//! through SplitMix64 — a different stream than upstream `StdRng`
//! (ChaCha12), which is fine because nothing in the workspace depends on
//! the exact stream, only on determinism under a fixed seed.

use std::ops::Range;

/// Raw 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly from a half-open
/// range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                range.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        // 24 explicit mantissa-width bits -> uniform in [0, 1).
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        let v = range.start + u * (range.end - range.start);
        // Guard the open upper bound against rounding.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = range.start + u * (range.end - range.start);
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from the half-open `range`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Draws a value of any [`StandardSample`] type.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic seedable generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must never be all-zero; SplitMix64 cannot produce four
            // zeros from any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&f));
            let g = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&g));
            let d = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&d));
            let i = rng.gen_range(-5i32..6);
            assert!((-5..6).contains(&i));
        }
    }

    #[test]
    fn uniform_ints_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut w: Vec<u32> = (0..50).collect();
        let mut rng2 = StdRng::seed_from_u64(5);
        w.shuffle(&mut rng2);
        assert_eq!(v, w);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn standard_samples_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_true = false;
        let mut saw_false = false;
        for _ in 0..500 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen::<bool>() {
                saw_true = true;
            } else {
                saw_false = true;
            }
        }
        assert!(saw_true && saw_false);
    }
}
