#!/bin/bash
# Regenerates every table and figure of the survey at the configured scale.
# Each binary writes CSVs into results/ and a log into results/logs/.
set -u
cd "$(dirname "$0")"
SCALE="${WEAVESS_SCALE:-0.003}"
export WEAVESS_SCALE="$SCALE"
BINS=(
  table02_taxonomy
  table03_datasets
  index_eval
  search_eval
  components_eval
  fig11_optimized
  table16_kdr_vs_ngt
  table23_random_trials
  table24_ml_methods
  table12_scalability
  fig14_complexity
  table07_recommendations
  ablation_oa
  tune_params
)
for b in "${BINS[@]}"; do
  echo "=== running $b (scale=$SCALE) ==="
  cargo run --release -p weavess-bench --bin "$b" \
    > "results/logs/$b.log" 2> "results/logs/$b.err" \
    && echo "    ok" || echo "    FAILED (see results/logs/$b.err)"
done
echo "all experiments done"
